// E8 — Lemma 14: the c-complete bipartite hitting game (perfect matching)
// needs >= c/3 rounds to win with probability 1/2.
//
// The fresh player proposes distinct edges; against a uniform perfect
// matching each fresh proposal hits with probability ~1/c, so the median
// win round is ~c ln 2 — comfortably above c/3, as the lemma requires.
#include <cstdio>

#include "bench_common.h"
#include "lowerbounds/hitting_game.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 600));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e8_complete_game", &args);

  std::printf("E8: c-complete bipartite hitting game   (Lemma 14, "
              "%d trials/point)\n",
              trials);

  Table table({"c", "budget c/3", "win rate in budget", "median win round",
               "median/c"});
  ParallelSweep pool(jobs);
  for (int c : {12, 24, 48, 96, 192}) {
    std::vector<GameResult> outcomes(static_cast<std::size_t>(trials));
    pool.run(trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(c),
                          static_cast<std::uint64_t>(t));
      HittingGameReferee ref(c, c, Rng(rng()));
      FreshPlayer player(c, Rng(rng()));
      outcomes[static_cast<std::size_t>(t)] = play(ref, player, 64LL * c);
    });
    int wins_in_budget = 0;
    std::vector<double> win_rounds;
    for (const GameResult& result : outcomes) {
      if (result.won && result.rounds <= c / 3) ++wins_in_budget;
      if (result.won) win_rounds.push_back(static_cast<double>(result.rounds));
    }
    const double median = summarize(win_rounds).median;
    const std::string tag = "c" + std::to_string(c);
    manifest.set(tag + ".win_rate_in_budget",
                 static_cast<double>(wins_in_budget) / trials);
    manifest.set(tag + ".median_win_round", median);
    table.add_row({Table::num(static_cast<std::int64_t>(c)),
                   Table::num(static_cast<std::int64_t>(c / 3)),
                   Table::num(static_cast<double>(wins_in_budget) / trials, 3),
                   Table::num(median, 1), Table::num(median / c, 3)});
  }
  table.print_with_title("fresh player vs uniform perfect matching");
  std::printf("\nLemma 14 predicts every 'win rate in budget' < 0.5.\n");
  manifest.write();
  return 0;
}
