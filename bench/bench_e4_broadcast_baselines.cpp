// E4 — Section 1: CogCast vs the rendezvous straw man.
//
// Claim: the straightforward "everyone runs randomized rendezvous with the
// source" solves local broadcast in O((c^2/k) lg n), while CogCast needs
// only O((c/k) lg n) for n >= c — a factor-c speedup. Sweeping c, the
// measured baseline/CogCast ratio should grow ~linearly in c.
//
// The second table compares *pairwise* rendezvous primitives (n = 2):
// randomized hopping (~c^2/k) vs the deterministic bit-phased fast/slow
// schedule (O(c^2 lg I)) — the determinism premium the paper's footnote 1
// discusses.
#include <cstdio>
#include <memory>

#include "baselines/det_rendezvous.h"
#include "bench_common.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

double det_rendezvous_slots(int c, int k, std::uint64_t seed) {
  SharedCoreAssignment assignment(2, c, k, LabelMode::LocalRandom, Rng(seed));
  Message payload;
  payload.type = MessageType::Data;
  DetRendezvousNode holder(0, c, true, payload);
  DetRendezvousNode seeker(1, c, false, payload);
  Network net(assignment, {&holder, &seeker});
  net.run(100LL * c * c);
  return static_cast<double>(seeker.informed()
                                 ? seeker.informed_slot()
                                 : net.now());
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 64));
  const int k = static_cast<int>(args.get_int("k", 2));
  args.finish();
  BenchManifest manifest("e4_broadcast_baselines", &args);

  std::printf("E4: CogCast vs rendezvous broadcast   (n=%d, k=%d, "
              "%d trials/point; expected ratio ~ c)\n",
              n, k, trials);

  // The partitioned pattern realizes the pairwise overlap *exactly* k, so
  // the ratio should track the claimed factor c cleanly.
  Table table({"c", "cogcast med", "rendezvous med", "ratio", "ratio/c"});
  for (int c : {8, 16, 32, 64}) {
    const Summary cog = cogcast_slots("partitioned", n, c, k, trials, seed + c, jobs, 4.0, shards);
    const Summary rv =
        rendezvous_broadcast_slots("partitioned", n, c, k, trials, seed + c, jobs, shards);
    const double ratio = safe_ratio(rv.median, cog.median);
    const std::string tag = "c" + std::to_string(c);
    manifest.add_summary(tag + ".cogcast", cog);
    manifest.add_summary(tag + ".rendezvous", rv);
    manifest.set(tag + ".ratio", ratio);
    table.add_row({Table::num(static_cast<std::int64_t>(c)),
                   Table::num(cog.median, 1), Table::num(rv.median, 1),
                   Table::num(ratio, 2), Table::num(ratio / c, 3)});
  }
  table.print_with_title("local broadcast, partitioned pattern (overlap = k exactly)");

  Table pairwise({"c", "rand rendezvous med", "deterministic med",
                  "theory c^2/k", "theory bound c^2 lgI"});
  for (int c : {4, 8, 16, 32}) {
    std::vector<double> rnd, det;
    Rng seeder(seed * 7 + c);
    for (int t = 0; t < trials; ++t) {
      SharedCoreAssignment a(2, c, k, LabelMode::LocalRandom, Rng(seeder()));
      BaselineRunConfig config;
      config.net.shards = shards;
      config.seed = seeder();
      const auto out = run_rendezvous_broadcast(a, config);
      rnd.push_back(static_cast<double>(out.slots));
      det.push_back(det_rendezvous_slots(c, k, seeder()));
    }
    manifest.add_summary("pairwise.c" + std::to_string(c) + ".random",
                         summarize(rnd));
    manifest.add_summary("pairwise.c" + std::to_string(c) + ".deterministic",
                         summarize(det));
    pairwise.add_row(
        {Table::num(static_cast<std::int64_t>(c)),
         Table::num(summarize(rnd).median, 1),
         Table::num(summarize(det).median, 1),
         Table::num(static_cast<double>(c) * c / k, 1),
         Table::num(static_cast<double>(c) * c * 20, 0)});
  }
  pairwise.print_with_title("pairwise rendezvous (n = 2)");
  manifest.write();
  return 0;
}
