// E29 — the scorecard: every quantitative claim of the paper, predicted vs
// measured, in one table with PASS/FAIL verdicts.
//
// A meta-bench for quick regression checking: runs a small instance of
// each claim (upper bounds, lower bounds, the worked examples, the model
// substitutions) against the closed forms in analysis/theory.h. Windows
// are generous where the paper only fixes a shape (hidden constants) and
// tight where it fixes a number (Theorem 16's (c+1)/(k+1)). Exit code =
// number of failing rows, so CI can gate on it.
#include <cstdio>
#include <iterator>

#include "analysis/theory.h"
#include "baselines/tdma_aggregation.h"
#include "bench_common.h"
#include "lowerbounds/hitting_game.h"
#include "sim/backoff.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e29_scorecard", &args);

  std::printf("E29: scorecard — every paper claim, predicted vs measured "
              "(%d trials/row)\n",
              trials);

  std::vector<theory::ScoreRow> rows;
  Rng seeder(seed);

  {  // Theorem 4: broadcast time shape (partitioned => overlap exactly k).
    const int n = 128, c = 16, k = 4;
    const Summary s = cogcast_slots("partitioned", n, c, k, trials, seeder(), jobs, 4.0, shards);
    rows.push_back({"broadcast slots (n=128,c=16,k=4)", "Theorem 4",
                    theory::cogcast_slots(n, c, k), s.median, 0.2, 3.0});
  }
  {  // Theorem 4: the 1/k factor — ratio of medians at k vs 4k.
    const int n = 64, c = 16;
    const Summary s1 = cogcast_slots("partitioned", n, c, 2, trials, seeder(), jobs, 4.0, shards);
    const Summary s4 = cogcast_slots("partitioned", n, c, 8, trials, seeder(), jobs, 4.0, shards);
    rows.push_back({"T(k=2)/T(k=8) (n=64,c=16)", "Theorem 4 (1/k)", 4.0,
                    safe_ratio(s1.median, s4.median), 0.5, 2.0});
  }
  {  // Theorem 10: phase 4 within 3(n+1) slots.
    const int n = 64, c = 16, k = 4;
    std::vector<double> p4;
    Rng local(seeder());
    for (int t = 0; t < trials; ++t) {
      SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                      Rng(local()));
      CogCompRunConfig config;
      config.net.shards = shards;
      config.params = {n, c, k, 4.0};
      config.seed = local();
      const auto values = make_values(n, local());
      const auto out = run_cogcomp(assignment, values, config);
      if (out.completed && out.result == out.expected)
        p4.push_back(static_cast<double>(out.phase4_slots));
    }
    rows.push_back({"phase-4 slots (n=64)", "Theorem 10",
                    theory::cogcomp_phase4_bound(n), summarize(p4).p95, 0.0,
                    1.0});
  }
  {  // Lemma 11: the fresh player's median win round exceeds the budget.
    const int c = 32, k = 4;
    std::vector<double> wins;
    Rng local(seeder());
    for (int t = 0; t < 200; ++t) {
      HittingGameReferee ref(c, k, Rng(local()));
      FreshPlayer player(c, Rng(local()));
      const auto result = play(ref, player, 64LL * c * c);
      if (result.won) wins.push_back(static_cast<double>(result.rounds));
    }
    rows.push_back({"hitting-game median round (c=32,k=4)", "Lemma 11",
                    theory::lemma11_budget(c, k), summarize(wins).median, 1.0,
                    1e9});
  }
  {  // Lemma 14: complete-game median exceeds c/3.
    const int c = 48;
    std::vector<double> wins;
    Rng local(seeder());
    for (int t = 0; t < 200; ++t) {
      HittingGameReferee ref(c, c, Rng(local()));
      FreshPlayer player(c, Rng(local()));
      const auto result = play(ref, player, 64LL * c);
      if (result.won) wins.push_back(static_cast<double>(result.rounds));
    }
    rows.push_back({"complete-game median round (c=48)", "Lemma 14",
                    theory::lemma14_budget(c), summarize(wins).median, 1.0,
                    1e9});
  }
  {  // Theorem 16: exact expectation of the optimal scan.
    const int c = 32, k = 2;
    Rng local(seeder());
    double sum = 0;
    const int probes = 20000;
    for (int t = 0; t < probes; ++t) {
      const auto order = local.sample_without_replacement(c, c);
      for (int slot = 1; slot <= c; ++slot)
        if (order[static_cast<std::size_t>(slot - 1)] < k) {
          sum += slot;
          break;
        }
    }
    rows.push_back({"first-overlap-hit mean (c=32,k=2)", "Theorem 16",
                    theory::theorem16_expectation(c, k), sum / probes, 0.95,
                    1.05});
  }
  {  // Section 5: TDMA matches the aggregation lower bound.
    const int n = 96, c = 16, k = 2;
    PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                     Rng(seeder()));
    const auto values = make_values(n, seeder());
    const auto out = run_tdma_aggregation(assignment, values, AggOp::Sum);
    rows.push_back({"TDMA aggregation slots (n=96,k=2)", "Section 5 Omega(n/k)",
                    theory::aggregation_lower_bound(n, k),
                    static_cast<double>(out.slots), 0.9, 1.5});
  }
  {  // Section 6: hopping-together expectation on the worked example.
    const int n = 8, c = 32, k = 8;
    std::vector<double> slots;
    Rng local(seeder());
    for (int t = 0; t < trials; ++t) {
      PartitionedAssignment assignment(n, c, k, LabelMode::Global,
                                       Rng(local()));
      BaselineRunConfig config;
      config.net.shards = shards;
      config.seed = local();
      config.max_slots = 8LL * assignment.total_channels();
      const auto out = run_hopping_together(assignment, config);
      if (out.completed) slots.push_back(static_cast<double>(out.slots));
    }
    rows.push_back({"hopping-together mean (n=8,c=32,k=8)", "Section 6",
                    theory::hopping_together_slots(n, c, k),
                    summarize(slots).mean, 0.2, 2.0});
  }
  {  // Footnote 4: decay backoff micro-slot p95 within the log^2 envelope.
    const int m = 128;
    Rng local(seeder());
    std::vector<double> micro;
    const auto params = backoff_params_for(m);
    for (int t = 0; t < 2000; ++t) {
      const auto out = decay_backoff(m, params, local);
      if (out.resolved) micro.push_back(static_cast<double>(out.micro_slots));
    }
    rows.push_back({"backoff p95 micro-slots (m=128)", "footnote 4",
                    theory::backoff_micro_slots(m), summarize(micro).p95, 0.0,
                    1.5});
  }
  {  // Section 1: rendezvous broadcast straw man shape.
    const int n = 32, c = 16, k = 2;
    const Summary s =
        rendezvous_broadcast_slots("partitioned", n, c, k, trials, seeder(), jobs, shards);
    rows.push_back({"rendezvous broadcast (n=32,c=16,k=2)",
                    "Section 1 straw man",
                    theory::rendezvous_broadcast_slots(n, c, k), s.median, 0.2,
                    3.0});
  }

  const int failures = theory::print_scorecard(rows, "paper scorecard");
  static const char* kRowKeys[] = {
      "theorem4_broadcast", "theorem4_k_ratio",  "theorem10_phase4",
      "lemma11_hitting",    "lemma14_complete",  "theorem16_scan",
      "section5_tdma",      "section6_hopping",  "footnote4_backoff",
      "section1_rendezvous"};
  for (std::size_t i = 0; i < rows.size() && i < std::size(kRowKeys); ++i) {
    manifest.set(std::string(kRowKeys[i]) + ".measured", rows[i].measured);
    manifest.set_int(std::string(kRowKeys[i]) + ".pass",
                     rows[i].pass() ? 1 : 0);
  }
  manifest.set_int("failures", failures);
  manifest.write();
  std::printf("\n%d/%zu rows pass.\n", static_cast<int>(rows.size()) - failures,
              rows.size());
  return failures;
}
