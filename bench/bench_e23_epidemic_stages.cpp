// E23 — the *structure* of Theorem 4's proof, made visible.
//
// The analysis (Claims 1-3) splits the epidemic into two stages when
// n >= c:
//   stage 1: while <= c/2 nodes are informed, each informed node
//            independently informs someone with probability Omega(k/c)
//            per slot -> exponential doubling -> c/2 informed within
//            O((c/k) lg n) slots;
//   stage 2: each still-uninformed node becomes informed with probability
//            Omega(k/c) per slot -> union bound -> everyone informed in
//            another O((c/k) lg n) slots.
//
// The harness records the informed-count curve slot by slot and reports:
//   (a) the measured time to reach c/2 informed vs (c/k) lg n;
//   (b) the measured stage-2 per-node hazard rate vs the k/c floor;
//   (c) the doubling times early in stage 1.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/cogcast.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

struct Curve {
  Slot reach_half_c = 0;      // first slot with >= c/2 informed
  Slot completion = 0;        // first slot with all informed
  double stage2_hazard = 0;   // mean per-node informing prob after c/2
  double first_doubling = 0;  // slots to go from 1 to 2 informed
};

Curve run_curve(int n, int c, int k, std::uint64_t seed) {
  // Partitioned: pairwise overlap is exactly k, so the stage bounds can be
  // evaluated at the nominal k rather than an effective overlap.
  PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Message payload;
  payload.type = MessageType::Data;
  Rng seeder(seed + 1);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, payload, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  NetworkOptions opt;
  opt.seed = seed + 2;
  Network net(assignment, protocols, opt);

  Curve curve;
  int informed = 1;
  double hazard_sum = 0;
  int hazard_samples = 0;
  while (informed < n && net.now() < 1'000'000) {
    const int before = informed;
    net.step();
    informed = 0;
    for (const auto& node : nodes)
      if (node->informed()) ++informed;
    if (curve.first_doubling == 0 && informed >= 2)
      curve.first_doubling = static_cast<double>(net.now());
    if (curve.reach_half_c == 0 && 2 * informed >= c)
      curve.reach_half_c = net.now();
    if (curve.reach_half_c != 0 && before < n) {
      // Stage 2: fraction of the remaining uninformed nodes informed in
      // this slot estimates the per-node hazard.
      hazard_sum += static_cast<double>(informed - before) / (n - before);
      ++hazard_samples;
    }
  }
  curve.completion = net.now();
  curve.stage2_hazard = hazard_samples > 0 ? hazard_sum / hazard_samples : 1.0;
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e23_epidemic_stages", &args);

  std::printf("E23: the two epidemic stages of Theorem 4's proof   "
              "(%d trials/point)\n",
              trials);

  Table table({"n", "c", "k", "to c/2 informed (med)",
               "stage bound (c/k)lg n", "stage-2 hazard", "floor k/c",
               "hazard/floor", "completion med"});
  struct Config {
    int n, c, k;
  };
  // c close to n keeps listeners-per-channel ~1 so the doubling stage is
  // actually exercised (with n >> c a single winning broadcast informs
  // ~n/c nodes at once and stage 1 collapses).
  ParallelSweep pool(jobs);
  for (const Config cfg :
       {Config{64, 32, 4}, Config{128, 64, 8}, Config{128, 64, 2},
        Config{256, 128, 8}}) {
    std::vector<Curve> outcomes(static_cast<std::size_t>(trials));
    pool.run(trials, [&](int t) {
      Rng rng =
          trial_rng(seed + static_cast<std::uint64_t>(cfg.n + cfg.c + cfg.k),
                    static_cast<std::uint64_t>(t));
      outcomes[static_cast<std::size_t>(t)] =
          run_curve(cfg.n, cfg.c, cfg.k, rng());
    });
    std::vector<double> half, hazard, total;
    for (const Curve& curve : outcomes) {
      half.push_back(static_cast<double>(curve.reach_half_c));
      hazard.push_back(curve.stage2_hazard);
      total.push_back(static_cast<double>(curve.completion));
    }
    const double stage_bound =
        (static_cast<double>(cfg.c) / cfg.k) *
        std::log2(std::max(2.0, static_cast<double>(cfg.n)));
    const double floor = static_cast<double>(cfg.k) / cfg.c;
    const double hz = summarize(hazard).median;
    const std::string tag = "n" + std::to_string(cfg.n) + ".c" +
                            std::to_string(cfg.c) + ".k" +
                            std::to_string(cfg.k);
    manifest.set(tag + ".reach_half_c.median", summarize(half).median);
    manifest.set(tag + ".stage2_hazard.median", hz);
    manifest.set(tag + ".completion.median", summarize(total).median);
    table.add_row({Table::num(static_cast<std::int64_t>(cfg.n)),
                   Table::num(static_cast<std::int64_t>(cfg.c)),
                   Table::num(static_cast<std::int64_t>(cfg.k)),
                   Table::num(summarize(half).median, 1),
                   Table::num(stage_bound, 1), Table::num(hz, 3),
                   Table::num(floor, 3), Table::num(hz / floor, 2),
                   Table::num(summarize(total).median, 1)});
  }
  table.print_with_title("stage structure (partitioned pattern, n >= c)");
  std::printf("\ntheory: 'to c/2' <= O(stage bound); stage-2 hazard >= "
              "Omega(k/c)\n(hazard/floor is the hidden constant of "
              "Claim 3 — expect O(1) and >= ~0.3).\n");
  manifest.write();
  return 0;
}
