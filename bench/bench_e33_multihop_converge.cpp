// E33 — multi-hop convergecast: aggregation over the flood tree.
//
// Completes the multi-hop story (E25 floods; this drains): values flow up
// deepest-first in depth-scheduled epochs with addressed, acked,
// deduplicated transfers. Completion cost is dominated by
// epochs x epoch length, i.e. ~ tree depth x (c^2/k) — the multi-hop
// analogue of the single-hop Omega(n/k) discussion, paid per *level*
// rather than per node thanks to in-network combining.
#include <cstdio>

#include "bench_common.h"
#include "core/multihop_converge.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int c = static_cast<int>(args.get_int("c", 6));
  const int k = static_cast<int>(args.get_int("k", 2));
  args.finish();
  BenchManifest manifest("e33_multihop_converge", &args);

  std::printf("E33: multi-hop convergecast   (c=%d, k=%d, %d trials/point)\n",
              c, k, trials);

  Table table({"topology", "n", "diameter", "median slots", "exact results",
               "coverage failures"});
  struct Config {
    const char* shape;
    int n;
  };
  for (const Config cfg : {Config{"line", 12}, Config{"line", 24},
                           Config{"ring", 16}, Config{"grid", 16},
                           Config{"grid", 32}, Config{"clique", 16}}) {
    struct ConvergeTrial {
      bool completed = false;
      bool exact = false;
      double slots = 0;
      int diameter = 0;
    };
    std::vector<ConvergeTrial> outcomes(static_cast<std::size_t>(trials));
    ParallelSweep pool(jobs);
    pool.run(trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(cfg.n),
                          static_cast<std::uint64_t>(t));
      const std::string shape = cfg.shape;
      Topology topo = shape == "line"   ? Topology::line(cfg.n)
                      : shape == "ring" ? Topology::ring(cfg.n)
                      : shape == "grid"
                          ? Topology::grid(cfg.n / 4, 4)
                          : Topology::clique(cfg.n);
      ConvergeTrial trial;
      trial.diameter = topo.diameter();
      SharedCoreAssignment assignment(cfg.n, c, k, LabelMode::LocalRandom,
                                      Rng(rng()));
      const auto values = make_values(cfg.n, rng());
      MultihopConvergeConfig config;
      config.seed = rng();
      const auto out = run_multihop_converge(assignment, topo, values, config);
      trial.completed = out.completed;
      trial.exact = out.completed && out.result == out.expected;
      trial.slots = static_cast<double>(out.slots);
      outcomes[static_cast<std::size_t>(t)] = trial;
    });
    std::vector<double> slots;
    int exact = 0, shortfall = 0;
    int diameter = 0;
    for (const ConvergeTrial& trial : outcomes) {
      diameter = trial.diameter;
      if (!trial.completed) {
        ++shortfall;
        continue;
      }
      if (trial.exact) ++exact;
      slots.push_back(trial.slots);
    }
    const std::string tag =
        std::string(cfg.shape) + ".n" + std::to_string(cfg.n);
    manifest.set(tag + ".median_slots", summarize(slots).median);
    manifest.set_int(tag + ".exact", exact);
    manifest.set_int(tag + ".shortfall", shortfall);
    table.add_row({cfg.shape, Table::num(static_cast<std::int64_t>(cfg.n)),
                   Table::num(static_cast<std::int64_t>(diameter)),
                   Table::num(summarize(slots).median, 1),
                   Table::num(static_cast<std::int64_t>(exact)) + "/" +
                       Table::num(static_cast<std::int64_t>(trials)),
                   Table::num(static_cast<std::int64_t>(shortfall))});
  }
  table.print_with_title("aggregation back to the source over the flood tree");
  std::printf("\nreading: exact results whenever coverage completes; slots\n"
              "scale with the scheduled epochs (n-1 levels x epoch length).\n");
  manifest.write();
  return 0;
}
