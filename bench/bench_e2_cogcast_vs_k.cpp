// E2 — Theorem 4, scaling in k.
//
// Claim: CogCast's completion time scales as 1/k — doubling the guaranteed
// pairwise overlap halves the broadcast time. Fixing n and c and sweeping
// k, the fitted power-law exponent of median slots vs k should be ~ -1.
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 128));
  const int c = static_cast<int>(args.get_int("c", 32));
  args.finish();
  BenchManifest manifest("e2_cogcast_vs_k", &args);

  std::printf("E2: CogCast completion vs k   (Theorem 4, n=%d, c=%d, "
              "%d trials/point)\n",
              n, c, trials);

  // The 1/k shape is cleanest on the partitioned pattern, whose realized
  // overlap is exactly k; the other patterns over-deliver overlap (see
  // the k_eff column), which flattens their curves.
  for (const auto& pattern : static_pattern_names()) {
    Table table({"k", "k_eff", "theory (c/k_eff)lg n", "median", "p95",
                 "median/theory"});
    std::vector<double> xs, ys;
    for (int k : {1, 2, 4, 8, 16, 32}) {
      if (k > c) continue;
      const double theory = theorem4_shape_effective(pattern, n, c, k);
      const Summary s = cogcast_slots(pattern, n, c, k, trials, seed + k, jobs, 4.0, shards);
      manifest.add_summary(pattern + ".k" + std::to_string(k), s);
      table.add_row({Table::num(static_cast<std::int64_t>(k)),
                     Table::num(effective_overlap(pattern, c, k), 1),
                     Table::num(theory, 1), Table::num(s.median, 1),
                     Table::num(s.p95, 1),
                     Table::num(safe_ratio(s.median, theory), 3)});
      xs.push_back(k);
      ys.push_back(s.median);
    }
    table.print_with_title("pattern: " + pattern);
    if (pattern == "partitioned") print_fit("k", xs, ys, -1.0);
  }
  manifest.write();
  return 0;
}
