// E31 — verified broadcast and multi-source broadcast: two compositions
// of the paper's primitives.
//
// Table 1: the cost of certification. Plain CogCast gives the source no
// completion signal; appending a CogComp counting round (Result #2 over
// Result #1) buys an exact certificate for a fixed extra budget. The
// harness reports the overhead factor and the certificate's correctness.
//
// Table 2: replicated sources. Starting the epidemic from m nodes skips
// ~lg m doubling steps; completion falls with m until the per-slot
// channel-capacity floor.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/verified_broadcast.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int c = static_cast<int>(args.get_int("c", 8));
  const int k = static_cast<int>(args.get_int("k", 2));
  args.finish();
  BenchManifest manifest("e31_verified_broadcast", &args);

  std::printf("E31: verified & multi-source broadcast   (c=%d, k=%d, "
              "%d trials/point)\n",
              c, k, trials);

  Table cert({"n", "plain cogcast med", "verified med", "overhead",
              "certificates correct"});
  for (int n : {8, 16, 32, 64}) {
    const Summary plain =
        cogcast_slots("shared-core", n, c, k, trials, seed + static_cast<std::uint64_t>(n), jobs, 4.0, shards);
    std::vector<double> slots;
    int correct = 0;
    Rng seeder(seed + 400 + static_cast<std::uint64_t>(n));
    for (int t = 0; t < trials; ++t) {
      const VerifiedBroadcastParams params{n, c, k, 4.0};
      SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                      Rng(seeder()));
      Message payload;
      payload.type = MessageType::Data;
      Rng node_seeder(seeder());
      std::vector<std::unique_ptr<VerifiedBroadcastNode>> nodes;
      std::vector<Protocol*> protocols;
      for (NodeId u = 0; u < n; ++u) {
        nodes.push_back(std::make_unique<VerifiedBroadcastNode>(
            u, params, u == 0, payload,
            node_seeder.split(static_cast<std::uint64_t>(u))));
        protocols.push_back(nodes.back().get());
      }
      NetworkOptions opt;
      opt.seed = seeder();
      Network net(assignment, protocols, opt);
      const Slot end = net.run(params.max_slots());
      slots.push_back(static_cast<double>(end));
      // Certificate correctness: verified iff everyone is informed.
      bool all_informed = true;
      for (const auto& node : nodes)
        all_informed = all_informed && node->informed();
      if (nodes[0]->verified() == all_informed) ++correct;
    }
    const Summary ver = summarize(slots);
    const std::string tag = "cert.n" + std::to_string(n);
    manifest.set(tag + ".plain_median", plain.median);
    manifest.set(tag + ".verified_median", ver.median);
    manifest.set_int(tag + ".certificates_correct", correct);
    cert.add_row({Table::num(static_cast<std::int64_t>(n)),
                  Table::num(plain.median, 1), Table::num(ver.median, 1),
                  Table::num(safe_ratio(ver.median, plain.median), 2),
                  Table::num(static_cast<std::int64_t>(correct)) + "/" +
                      Table::num(static_cast<std::int64_t>(trials))});
  }
  cert.print_with_title("certification overhead (CogComp count round)");

  Table multi({"initial sources m", "median", "p95", "vs m=1"});
  const int n = 96;
  double base = 0;
  for (int m : {1, 2, 4, 8, 16}) {
    std::vector<double> slots;
    Rng seeder(seed + 900 + static_cast<std::uint64_t>(m));
    for (int t = 0; t < trials; ++t) {
      SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                      Rng(seeder()));
      CogCastRunConfig config;
      config.net.shards = shards;
      config.params = {n, c, k, 4.0};
      config.seed = seeder();
      for (NodeId u = 1; u < m; ++u) config.extra_sources.push_back(u);
      const auto out = run_cogcast(assignment, config);
      if (out.completed) slots.push_back(static_cast<double>(out.slots));
    }
    const Summary s = summarize(slots);
    if (m == 1) base = s.median;
    manifest.add_summary("multi.m" + std::to_string(m), s);
    multi.add_row({Table::num(static_cast<std::int64_t>(m)),
                   Table::num(s.median, 1), Table::num(s.p95, 1),
                   Table::num(safe_ratio(s.median, base), 2)});
  }
  multi.print_with_title("multi-source epidemic (n=96)");
  std::printf("\ntheory: certification costs a fixed additive CogComp budget;\n"
              "m sources save ~lg m doubling steps.\n");
  manifest.write();
  return 0;
}
