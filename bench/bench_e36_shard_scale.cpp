// E36 — intra-trial sharded resolve strong scaling (shard tentpole).
//
// E35 parallelizes *across* trials (ParallelSweep); this harness pins the
// orthogonal axis: one trial, one big slot engine, resolve phase split
// across worker threads by contiguous channel ranges
// (NetworkOptions::shards, sim/network.cpp). The workload is E35's
// duty-cycled million-node chatter fleet on the SoA batch path — the
// regime where a single trial is the whole machine's job and per-trial
// parallelism is the only speedup left.
//
// Three pins, mirroring E35's structure:
//
//   * equivalence — the identical workload stepped at every shard count
//     must finish with byte-identical TraceStats (deterministic equiv.*
//     metrics, always 1): sharding is an execution strategy, never a
//     model change (docs/DETERMINISM.md);
//   * strong scaling — node-slots/sec at shards in {1, 2, 4, 8, 16} over
//     a fixed n. Per-leg rates are volatile; the best-over-fused ratio is
//     recorded as the *deterministic* gate metric shard.scaling_ratio so
//     the regression gate trips on a sharded-path cliff. The ratio is
//     machine-relative: on an N-core box the engine caps its pool at N
//     workers (Network::shard_workers), so a single-core CI runner
//     legitimately reports ~1.0 while a 16-core box should report the
//     near-linear figure — the committed baseline pins the box it was
//     generated on, and the tolerance is generous;
//   * overhead — the shards=16 leg on a *small* engine (--overhead-n),
//     where the plan/merge machinery is pure cost; its ratio to fused is
//     volatile telemetry for eyeballing the crossover.
//
// With --compare BASELINE [--tolerances FILE] the run self-gates exactly
// like E35 (the CI perf-smoke step runs this at reduced --slots; shard
// counts never change, so metric names stay comparable).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/assignment.h"
#include "sim/network.h"
#include "util/bench_gate.h"
#include "util/bench_report.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"

namespace cogradio {
namespace {

constexpr int kChannelsPerNode = 16;
constexpr int kOverlap = 4;
constexpr int kDutyPeriod = 100;
constexpr int kShardCounts[] = {1, 2, 4, 8, 16};

inline std::uint64_t chatter_mix(std::uint64_t x) {
  x ^= x >> 29;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 32;
  return x;
}

inline int chatter_phase(Slot slot) {
  return static_cast<int>(
      chatter_mix(static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull) %
      static_cast<std::uint64_t>(kDutyPeriod));
}

// E35's feedback-oblivious duty-cycled chatter (bench_e35_scale.cpp): a
// pure hash of (slot, node) decides mode, label and payload, so every
// shard-count leg offers byte-identical load.
class ChatterClient : public BatchClient {
 public:
  explicit ChatterClient(int n) : n_(n) {}

  void begin_slot(Slot slot, std::span<Mode> mode,
                  std::span<LocalLabel> label) override {
    for (NodeId u = chatter_phase(slot); u < n_; u += kDutyPeriod) {
      const std::uint64_t h = chatter_mix(
          static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull +
          static_cast<std::uint64_t>(u) * 0xBF58476D1CE4E5B9ull);
      const std::uint64_t roll = h % 10;
      if (roll == 0) continue;
      mode[static_cast<std::size_t>(u)] =
          roll < 5 ? Mode::Broadcast : Mode::Listen;
      label[static_cast<std::size_t>(u)] = static_cast<LocalLabel>(
          (h >> 8) % static_cast<std::uint64_t>(kChannelsPerNode));
    }
  }
  Message source_message(Slot slot, NodeId node) override {
    Message m;
    m.type = MessageType::Data;
    m.a = slot * 1000 + node;
    return m;
  }
  void end_slot(const BatchFeedback& fb) override {
    for (NodeId u = chatter_phase(fb.slot); u < n_; u += kDutyPeriod)
      sink_ += (fb.flags[static_cast<std::size_t>(u)] & slotflag::kTxSuccess)
                   ? 1
                   : 0;
  }
  bool done() const override { return false; }

  std::int64_t sink_ = 0;

 private:
  int n_;
};

struct LegResult {
  double node_slots_per_sec = 0.0;
  int workers = 0;  // threads the engine actually granted (core-capped)
  TraceStats stats;
};

LegResult run_leg(int n, int shards, int warmup, int slots) {
  SharedCoreAssignment assignment(n, kChannelsPerNode, kOverlap,
                                  LabelMode::LocalRandom, Rng(1));
  ChatterClient client(n);
  NetworkOptions opt;
  opt.layout = EngineLayout::SoA;
  opt.seed = 36;
  opt.loss_prob = 0.125;  // keeps the fade-coin plan on the measured track
  opt.shards = shards;
  Network net(assignment, client, opt);
  for (int s = 0; s < warmup; ++s) net.step();
  const double start = monotonic_seconds();
  for (int s = 0; s < slots; ++s) net.step();
  const double elapsed = monotonic_seconds() - start;
  LegResult out;
  out.node_slots_per_sec = static_cast<double>(n) * slots / elapsed;
  out.workers = net.shard_workers();
  out.stats = net.stats();
  return out;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Self-gate against a committed baseline (same shape as E35's).
int self_gate(const RunManifest& manifest, const std::string& compare_path,
              const std::string& tolerances_path) {
  std::string error;
  const auto current = parse_json(manifest.to_json(), &error);
  if (!current) {
    std::fprintf(stderr, "e36: own manifest invalid: %s\n", error.c_str());
    return 1;
  }
  const auto baseline_text = read_file(compare_path);
  if (!baseline_text) {
    std::fprintf(stderr, "e36: cannot read baseline %s\n",
                 compare_path.c_str());
    return 1;
  }
  const auto baseline = parse_json(*baseline_text, &error);
  if (!baseline) {
    std::fprintf(stderr, "e36: baseline %s invalid: %s\n",
                 compare_path.c_str(), error.c_str());
    return 1;
  }
  GateTolerances tolerances;
  if (!tolerances_path.empty()) {
    const auto text = read_file(tolerances_path);
    if (!text) {
      std::fprintf(stderr, "e36: cannot read tolerances %s\n",
                   tolerances_path.c_str());
      return 1;
    }
    const auto doc = parse_json(*text, &error);
    std::optional<GateTolerances> parsed;
    if (doc) parsed = parse_tolerances(*doc, &error);
    if (!parsed) {
      std::fprintf(stderr, "e36: tolerances %s invalid: %s\n",
                   tolerances_path.c_str(), error.c_str());
      return 1;
    }
    tolerances = *parsed;
  }
  const GateResult result =
      compare_bench_manifests(*current, *baseline, tolerances);
  const std::string report = result.report();
  std::fputs(report.c_str(), stdout);
  return result.ok() ? 0 : 1;
}

int run(CliArgs& args) {
  const int n = static_cast<int>(args.get_int("n", 1 << 20));
  const int slots = static_cast<int>(args.get_int("slots", 384));
  const int warmup = static_cast<int>(args.get_int("warmup", 48));
  const int overhead_n = static_cast<int>(args.get_int("overhead-n", 512));
  const std::string compare_path = args.get_string("compare", "");
  const std::string tolerances_path = args.get_string("tolerances", "");
  args.finish();

  std::printf("E36: sharded resolve strong scaling (n=%d, c=%d, k=%d)\n\n", n,
              kChannelsPerNode, kOverlap);
  bench::BenchManifest manifest("e36_shard_scale", &args);

  // --- Strong-scaling sweep over shard counts ----------------------------
  double fused_rate = 0.0;
  double best_rate = 0.0;
  TraceStats fused_stats;
  {
    auto t = manifest.phase("sweep");
    std::printf("single-trial sweep (%d slots after %d warmup):\n", slots,
                warmup);
    std::printf("  %6s  %7s  %18s  %8s\n", "shards", "workers",
                "node-slots/sec", "speedup");
    for (const int shards : kShardCounts) {
      const LegResult r = run_leg(n, shards, warmup, slots);
      if (shards == 1) {
        fused_rate = r.node_slots_per_sec;
        fused_stats = r.stats;
      }
      best_rate = std::max(best_rate, r.node_slots_per_sec);
      const std::string tag = "shards" + std::to_string(shards);
      manifest.manifest().set_volatile(tag + ".node_slots_per_sec",
                                       r.node_slots_per_sec);
      // Granted threads depend on the host's core count, never on results.
      manifest.manifest().set_volatile_int(tag + ".workers", r.workers);
      manifest.set_int("equiv." + tag + "_matches_fused",
                       r.stats == fused_stats ? 1 : 0);
      std::printf("  %6d  %7d  %18.3e  %7.2fx\n", shards, r.workers,
                  r.node_slots_per_sec, r.node_slots_per_sec / fused_rate);
    }
  }
  // The headline gate metric: best sharded throughput over fused. Bounded
  // below by ~1 minus plan/merge overhead on any box; scales with cores.
  const double scaling_ratio = best_rate / fused_rate;
  std::printf("\nshard.scaling_ratio (best/fused): %.3f\n", scaling_ratio);
  manifest.set("shard.scaling_ratio", scaling_ratio);

  // --- Small-engine overhead probe ---------------------------------------
  {
    auto t = manifest.phase("overhead");
    const LegResult fused = run_leg(overhead_n, 1, 64, 512);
    const LegResult wide = run_leg(overhead_n, 16, 64, 512);
    const double ratio = wide.node_slots_per_sec / fused.node_slots_per_sec;
    std::printf("overhead at n=%d: shards=16 runs at %.2fx of fused\n",
                overhead_n, ratio);
    manifest.manifest().set_volatile("overhead.shards16_vs_fused", ratio);
    manifest.set_int("overhead.shards16_matches_fused",
                     wide.stats == fused.stats ? 1 : 0);
  }

  manifest.write();

  if (!compare_path.empty())
    return self_gate(manifest.manifest(), compare_path, tolerances_path);
  return 0;
}

}  // namespace
}  // namespace cogradio

int main(int argc, char** argv) {
  cogradio::CliArgs args(argc, argv);
  return cogradio::run(args);
}
