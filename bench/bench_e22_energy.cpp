// E22 — radio duty-cycle / energy profile of the protocols.
//
// Not a theorem, but the natural systems counterpart of the paper's time
// bounds: CogCast buys its factor-c speedup by having *every informed
// node* transmit every slot, whereas the rendezvous baseline transmits
// only at the source. The harness reports per-node TX/RX slot totals
// (energy = TX + RX slots) until completion — showing that CogCast's
// total energy is nonetheless competitive because it finishes so much
// earlier, and that CogComp's phases 2-4 add only O(n) energy.
#include <cstdio>

#include "baselines/rendezvous_broadcast.h"
#include "bench_common.h"
#include "core/cogcast.h"
#include "core/cogcomp.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

struct EnergyProfile {
  double slots = 0;
  double total_tx = 0;
  double total_listen = 0;
  double max_node_energy = 0;
};

template <typename MakeProtocols>
EnergyProfile profile(ChannelAssignment& assignment, MakeProtocols make,
                      Slot cap, std::uint64_t seed) {
  auto owned = make();
  std::vector<Protocol*> protocols;
  for (auto& p : owned) protocols.push_back(p.get());
  NetworkOptions opt;
  opt.seed = seed;
  Network net(assignment, protocols, opt);
  net.run(cap);
  EnergyProfile out;
  out.slots = static_cast<double>(net.now());
  for (NodeId u = 0; u < assignment.num_nodes(); ++u) {
    const NodeActivity& a = net.activity(u);
    out.total_tx += static_cast<double>(a.tx);
    out.total_listen += static_cast<double>(a.listen);
    out.max_node_energy =
        std::max(out.max_node_energy, static_cast<double>(a.energy()));
  }
  return out;
}

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int c = static_cast<int>(args.get_int("c", 12));
  const int k = static_cast<int>(args.get_int("k", 3));
  args.finish();
  BenchManifest manifest("e22_energy", &args);

  std::printf("E22: energy / duty-cycle profile   (c=%d, k=%d, "
              "%d trials/point; energy = TX+RX node-slots)\n",
              c, k, trials);

  Table table({"n", "protocol", "slots", "total TX", "total RX",
               "max node energy", "energy/node"});
  ParallelSweep pool(jobs);
  for (int n : {16, 64}) {
    for (const std::string proto : {"cogcast", "rendezvous", "cogcomp"}) {
      std::vector<EnergyProfile> outcomes(static_cast<std::size_t>(trials));
      pool.run(trials, [&](int t) {
        Rng rng = trial_rng(seed + static_cast<std::uint64_t>(n),
                            static_cast<std::uint64_t>(t));
        SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                        Rng(rng()));
        Rng node_seeder(rng());
        EnergyProfile p;
        if (proto == "cogcast") {
          p = profile(
              assignment,
              [&] {
                std::vector<std::unique_ptr<Protocol>> v;
                for (NodeId u = 0; u < n; ++u)
                  v.push_back(std::make_unique<CogCastNode>(
                      u, c, u == 0, data_msg(),
                      node_seeder.split(static_cast<std::uint64_t>(u))));
                return v;
              },
              200'000, rng());
        } else if (proto == "rendezvous") {
          p = profile(
              assignment,
              [&] {
                std::vector<std::unique_ptr<Protocol>> v;
                for (NodeId u = 0; u < n; ++u)
                  v.push_back(std::make_unique<RendezvousBroadcastNode>(
                      u, c, u == 0, data_msg(),
                      node_seeder.split(static_cast<std::uint64_t>(u))));
                return v;
              },
              2'000'000, rng());
        } else {
          const CogCompParams params{n, c, k, 4.0};
          const auto values = make_values(n, rng());
          p = profile(
              assignment,
              [&] {
                std::vector<std::unique_ptr<Protocol>> v;
                for (NodeId u = 0; u < n; ++u)
                  v.push_back(std::make_unique<CogCompNode>(
                      u, params, u == 0, values[static_cast<std::size_t>(u)],
                      Aggregator(AggOp::Sum),
                      node_seeder.split(static_cast<std::uint64_t>(u))));
                return v;
              },
              params.max_slots(), rng());
        }
        outcomes[static_cast<std::size_t>(t)] = p;
      });
      double slots = 0, tx = 0, rx = 0, worst = 0;
      int ok = 0;
      for (const EnergyProfile& p : outcomes) {
        ++ok;
        slots += p.slots;
        tx += p.total_tx;
        rx += p.total_listen;
        worst = std::max(worst, p.max_node_energy);
      }
      const std::string tag = "n" + std::to_string(n) + "." + proto;
      manifest.set(tag + ".slots_mean", slots / ok);
      manifest.set(tag + ".tx_mean", tx / ok);
      manifest.set(tag + ".rx_mean", rx / ok);
      manifest.set(tag + ".max_node_energy", worst);
      table.add_row({Table::num(static_cast<std::int64_t>(n)), proto,
                     Table::num(slots / ok, 1), Table::num(tx / ok, 0),
                     Table::num(rx / ok, 0), Table::num(worst, 0),
                     Table::num((tx + rx) / ok / n, 1)});
    }
  }
  table.print_with_title("energy until completion (means over trials)");
  std::printf("\nreading: CogCast transmits from every informed node yet its\n"
              "early finish keeps per-node energy below the rendezvous\n"
              "baseline's long listening vigil; CogComp adds its O(n) phases.\n");
  manifest.write();
  return 0;
}
