// E17 — Lemma 12: a fast broadcast algorithm yields a fast hitting-game
// player; round accounting is min{c, n} * g(c, k, n).
//
// The harness plays the CogCast-derived reduction player against the
// referee and reports (a) its game rounds vs the min{c,n} * simulated-slot
// budget — always within it — and (b) how the simulated-slot count (the
// "broadcast time" of the simulated network) compares with the direct
// players' round counts, making Lemma 12's transfer quantitative.
#include <cstdio>

#include "bench_common.h"
#include "lowerbounds/hitting_game.h"
#include "lowerbounds/reduction.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e17_reduction", &args);

  std::printf("E17: Lemma 12 reduction player   (%d trials/point)\n", trials);

  Table table({"c", "k", "n", "median rounds", "median sim slots",
               "min{c,n}*slots", "rounds within budget", "lemma11 budget"});
  ParallelSweep pool(jobs);
  for (int c : {16, 32}) {
    for (int k : {2, c / 4}) {
      for (int n : {4, 16, 64}) {
        struct Trial {
          bool won = false;
          double rounds = 0, slots = 0;
          bool within = false;
        };
        std::vector<Trial> outcomes(static_cast<std::size_t>(trials));
        pool.run(trials, [&](int t) {
          Rng rng =
              trial_rng(seed + static_cast<std::uint64_t>(c * 1000 + k * 100 + n),
                        static_cast<std::uint64_t>(t));
          HittingGameReferee ref(c, k, Rng(rng()));
          CogCastHittingPlayer player(n, c, Rng(rng()));
          const GameResult result = play(ref, player, 1'000'000);
          if (!result.won) return;
          outcomes[static_cast<std::size_t>(t)] = {
              true, static_cast<double>(result.rounds),
              static_cast<double>(player.simulated_slots()),
              result.rounds <= static_cast<std::int64_t>(std::min(c, n)) *
                                   player.simulated_slots()};
        });
        std::vector<double> rounds, slots;
        int within = 0;
        for (const Trial& o : outcomes) {
          if (!o.won) continue;
          rounds.push_back(o.rounds);
          slots.push_back(o.slots);
          if (o.within) ++within;
        }
        const std::string tag = "c" + std::to_string(c) + ".k" +
                                std::to_string(k) + ".n" + std::to_string(n);
        manifest.set(tag + ".median_rounds", summarize(rounds).median);
        manifest.set(tag + ".median_sim_slots", summarize(slots).median);
        manifest.set(tag + ".within_budget_rate",
                     static_cast<double>(within) / trials);
        table.add_row(
            {Table::num(static_cast<std::int64_t>(c)),
             Table::num(static_cast<std::int64_t>(k)),
             Table::num(static_cast<std::int64_t>(n)),
             Table::num(summarize(rounds).median, 1),
             Table::num(summarize(slots).median, 1),
             Table::num(summarize(slots).median * std::min(c, n), 1),
             Table::num(static_cast<double>(within) / trials, 3),
             Table::num(lemma11_round_bound(c, k), 1)});
      }
    }
  }
  table.print_with_title("CogCast as a (c,k)-hitting-game player");
  std::printf("\n'rounds within budget' must be 1.000 (Lemma 12 accounting), and\n"
              "median rounds must exceed the Lemma 11 budget in the c<=n rows.\n");
  manifest.write();
  return 0;
}
