// E5 — Theorem 10: CogComp completes data aggregation in
// O((c/k) * max{1, c/n} * lg n + n) slots, with phase 4 bounded by O(n).
//
// Sweeping n at fixed (c, k), the table reports the per-phase slot
// breakdown; phase 4 must stay within 3(n+1) slots and the total within
// the theorem's shape.
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int c = static_cast<int>(args.get_int("c", 16));
  const int k = static_cast<int>(args.get_int("k", 4));
  args.finish();
  BenchManifest manifest("e5_cogcomp_scaling", &args);

  std::printf("E5: CogComp scaling vs n   (Theorem 10, c=%d, k=%d, "
              "%d trials/point)\n",
              c, k, trials);

  Table table({"n", "phase1 (bcast)", "phase2 (n)", "phase3 (rewind)",
               "phase4 med", "phase4 bound 3(n+1)", "total med",
               "theory shape", "ok"});
  ParallelSweep pool(jobs);
  for (int n : {8, 16, 32, 64, 128, 256}) {
    struct Trial {
      bool ok = false;
      double total = 0, p4 = 0;
    };
    std::vector<Trial> outcomes(static_cast<std::size_t>(trials));
    pool.run(trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(n),
                          static_cast<std::uint64_t>(t));
      SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                      Rng(rng()));
      CogCompRunConfig config;
      config.net.shards = shards;
      config.params = {n, c, k, 4.0};
      config.seed = rng();
      const auto values = make_values(n, rng());
      const auto out = run_cogcomp(assignment, values, config);
      if (!out.completed || out.result != out.expected) return;
      outcomes[static_cast<std::size_t>(t)] = {
          true, static_cast<double>(out.slots),
          static_cast<double>(out.phase4_slots)};
    });
    std::vector<double> total, p4;
    int failures = 0;
    for (const Trial& o : outcomes) {
      if (!o.ok) {
        ++failures;
        continue;
      }
      total.push_back(o.total);
      p4.push_back(o.p4);
    }
    const CogCompParams params{n, c, k, 4.0};
    const double theory = theorem4_shape(n, c, k) + n;
    const std::string tag = "n" + std::to_string(n);
    manifest.add_summary(tag + ".total", summarize(total));
    manifest.add_summary(tag + ".phase4", summarize(p4));
    manifest.set_int(tag + ".failures", failures);
    table.add_row(
        {Table::num(static_cast<std::int64_t>(n)),
         Table::num(params.phase1_end()),
         Table::num(static_cast<std::int64_t>(n)),
         Table::num(params.phase1_end()), Table::num(summarize(p4).median, 1),
         Table::num(static_cast<std::int64_t>(3 * (n + 1))),
         Table::num(summarize(total).median, 1), Table::num(theory, 1),
         failures == 0 ? "yes" : "FAIL"});
  }
  table.print_with_title("CogComp phase breakdown (shared-core pattern)");
  manifest.write();
  return 0;
}
