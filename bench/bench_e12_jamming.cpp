// E12 — Theorem 18: CogCast solves n-uniform jamming-resistant broadcast.
//
// In a multi-channel network where Eve jams up to j channels per node per
// slot, every pair of nodes keeps >= c - 2j mutually clear channels, which
// is exactly the dynamic CRN overlap guarantee — so CogCast completes in
// O((c/(c-2j)) * max{1, c/n} * lg n) slots. The harness sweeps the jamming
// budget and strategy and reports measured medians against that shape.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "sim/jamming.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

Summary jammed_cogcast(int n, int c, int budget, const std::string& strategy,
                       int trials, std::uint64_t base_seed, int jobs,
                       int shards) {
  return summarize(sweep_trials(
      trials, base_seed, jobs, [&](Rng& rng) -> std::optional<double> {
        IdentityAssignment assignment(n, c, LabelMode::LocalRandom, Rng(rng()));
        std::unique_ptr<Jammer> jammer;
        if (strategy == "random")
          jammer = std::make_unique<RandomJammer>(n, c, budget, Rng(rng()));
        else if (strategy == "sweep")
          jammer = std::make_unique<SweepJammer>(n, c, budget);
        else
          jammer = std::make_unique<ReactiveJammer>(n, c, budget);

        CogCastRunConfig config;

        config.net.shards = shards;
        const int k_eff = std::max(1, c - 2 * budget);
        config.params = {n, c, k_eff, 4.0};
        config.seed = rng();
        config.jammer = budget > 0 ? jammer.get() : nullptr;
        config.max_slots = 64 * config.params.horizon();
        const auto out = run_cogcast(assignment, config);
        if (!out.completed) return std::nullopt;
        return static_cast<double>(out.slots);
      }));
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 32));
  const int c = static_cast<int>(args.get_int("c", 16));
  args.finish();
  BenchManifest manifest("e12_jamming", &args);

  std::printf("E12: CogCast vs n-uniform jamming   (Theorem 18, n=%d, c=%d, "
              "%d trials/point)\n",
              n, c, trials);

  for (const std::string strategy : {"random", "sweep", "reactive"}) {
    Table table({"jam budget j", "eff. overlap c-2j", "median", "p95",
                 "theory shape", "median/theory"});
    for (int j : {0, 2, 4, 6}) {
      const int k_eff = std::max(1, c - 2 * j);
      const double theory = theorem4_shape(n, c, k_eff);
      const Summary s = jammed_cogcast(n, c, j, strategy, trials,
                                       seed + static_cast<std::uint64_t>(j * 17),
                                       jobs, shards);
      manifest.add_summary(strategy + ".j" + std::to_string(j), s);
      table.add_row({Table::num(static_cast<std::int64_t>(j)),
                     Table::num(static_cast<std::int64_t>(k_eff)),
                     Table::num(s.median, 1), Table::num(s.p95, 1),
                     Table::num(theory, 1),
                     Table::num(safe_ratio(s.median, theory), 3)});
    }
    table.print_with_title("jammer strategy: " + strategy);
  }
  manifest.write();
  return 0;
}
