// E20 — white-space stress: CogCast under a Markov primary-user spectrum
// (Section 1 motivation + Section 7 dynamic-model claim).
//
// Primary users occupy and release channels with temporal correlation;
// secondary nodes re-derive their c-channel sets every slot (k reserved
// channels keep the pairwise-overlap invariant). Sweeping the primary-user
// duty cycle from idle to saturated, CogCast's completion time should stay
// within the Theorem 4 envelope evaluated at k (the only guaranteed
// overlap), improving towards the effective-overlap envelope when the band
// is mostly free.
#include <cstdio>

#include "bench_common.h"
#include "sim/spectrum.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

Summary spectrum_cogcast(int n, int c, int k, double duty, int trials,
                         std::uint64_t base_seed, int jobs, int shards) {
  // duty = stationary busy probability; fix departure rate, solve arrival.
  SpectrumParams sp;
  sp.band = 2 * c;
  sp.p_busy_to_free = 0.25;
  sp.p_free_to_busy =
      duty >= 1.0 ? 1.0 : std::min(1.0, 0.25 * duty / (1.0 - duty));
  return summarize(sweep_trials(
      trials, base_seed, jobs, [&](Rng& rng) -> std::optional<double> {
        MarkovSpectrumAssignment assignment(n, c, k, sp, Rng(rng()));
        CogCastRunConfig config;
        config.net.shards = shards;
        config.params = {n, c, k, 4.0};
        config.seed = rng();
        config.max_slots = 64 * config.params.horizon();
        const auto out = run_cogcast(assignment, config);
        if (!out.completed) return std::nullopt;
        return static_cast<double>(out.slots);
      }));
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 48));
  const int c = static_cast<int>(args.get_int("c", 12));
  const int k = static_cast<int>(args.get_int("k", 3));
  args.finish();
  BenchManifest manifest("e20_spectrum", &args);

  std::printf("E20: CogCast under primary-user dynamics   (n=%d, c=%d, k=%d, "
              "%d trials/point)\n",
              n, c, k, trials);

  const double envelope = theorem4_shape(n, c, k);
  Table table({"PU duty cycle", "median", "p95", "theory envelope (k)",
               "median/envelope"});
  for (double duty : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const Summary s =
        spectrum_cogcast(n, c, k, duty, trials,
                         seed + static_cast<std::uint64_t>(duty * 100), jobs,
                         shards);
    manifest.add_summary(
        "duty" + std::to_string(static_cast<int>(duty * 100)), s);
    table.add_row({Table::num(duty, 2), Table::num(s.median, 1),
                   Table::num(s.p95, 1), Table::num(envelope, 1),
                   Table::num(safe_ratio(s.median, envelope), 3)});
  }
  table.print_with_title("primary-user load sweep (Markov on/off channels)");
  std::printf("\ntheory: ratios stay O(1) for every duty cycle — the paper's\n"
              "dynamic-model guarantee depends only on the k-overlap invariant.\n");
  manifest.write();
  return 0;
}
