// E13 — footnote 4 / appendix: decay backoff implements the one-winner
// collision model on a raw collision-loss radio in O(log^2 n) micro-slots
// per contended channel-slot, w.h.p.
//
// Table 1 sweeps the contender count and reports micro-slot cost and
// emulation failure rate. Table 2 runs CogCast end-to-end over the
// emulated radio and reports the total micro-slot overhead factor.
#include <cstdio>

#include "bench_common.h"
#include "sim/backoff.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 2000));
  const int cast_trials = static_cast<int>(args.get_int("cast-trials", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e13_backoff", &args);

  std::printf("E13: decay backoff substrate   (footnote 4, %d trials/point)\n",
              trials);

  Table table({"contenders m", "phase len", "budget", "decay median",
               "decay p95", "log2^2(m)", "decay failures",
               "CD-split median", "CD-split p95"});
  ParallelSweep pool(jobs);
  for (int m : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    const auto params = backoff_params_for(m);
    struct Trial {
      BackoffOutcome decay, cd;
    };
    std::vector<Trial> outcomes(static_cast<std::size_t>(trials));
    pool.run(trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(m),
                          static_cast<std::uint64_t>(t));
      Trial& o = outcomes[static_cast<std::size_t>(t)];
      o.decay = decay_backoff(m, params, rng);
      o.cd = cd_split_backoff(m, params.budget, rng);
    });
    std::vector<double> slots, cd_slots;
    int failures = 0;
    for (const Trial& o : outcomes) {
      if (!o.decay.resolved) {
        ++failures;
      } else {
        slots.push_back(static_cast<double>(o.decay.micro_slots));
      }
      if (o.cd.resolved)
        cd_slots.push_back(static_cast<double>(o.cd.micro_slots));
    }
    const Summary s = summarize(slots);
    const Summary sc = summarize(cd_slots);
    const double lg = std::log2(static_cast<double>(m));
    const std::string tag = "m" + std::to_string(m);
    manifest.add_summary(tag + ".decay.micro_slots", s);
    manifest.add_summary(tag + ".cd.micro_slots", sc);
    manifest.set_int(tag + ".decay.failures", failures);
    table.add_row({Table::num(static_cast<std::int64_t>(m)),
                   Table::num(static_cast<std::int64_t>(params.phase_length)),
                   Table::num(params.budget), Table::num(s.median, 1),
                   Table::num(s.p95, 1), Table::num(lg * lg, 1),
                   Table::num(static_cast<double>(failures) / trials, 4),
                   Table::num(sc.median, 1), Table::num(sc.p95, 1)});
  }
  table.print_with_title(
      "micro-slots to resolve one contended channel-slot "
      "(decay: no CD; tree-splitting: with CD)");

  Table e2e({"n", "c", "k", "slots", "micro-slots", "micro/success",
             "budget/chan-slot", "emulation failures"});
  for (int n : {16, 64, 256}) {
    const int c = 16, k = 4;
    std::vector<BroadcastOutcome> outcomes(
        static_cast<std::size_t>(cast_trials));
    pool.run(cast_trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(n),
                          static_cast<std::uint64_t>(t));
      SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                      Rng(rng()));
      CogCastRunConfig config;
      config.net.shards = shards;
      config.params = {n, c, k, 4.0};
      config.seed = rng();
      config.net.emulate_backoff = true;
      config.net.backoff = backoff_params_for(n);
      outcomes[static_cast<std::size_t>(t)] = run_cogcast(assignment, config);
    });
    double slots_sum = 0, micro_sum = 0, success_sum = 0, fail_sum = 0;
    int ok = 0;
    for (const BroadcastOutcome& out : outcomes) {
      if (!out.completed) continue;
      ++ok;
      slots_sum += static_cast<double>(out.slots);
      micro_sum += static_cast<double>(out.stats.micro_slots);
      success_sum += static_cast<double>(out.stats.successes);
      fail_sum += static_cast<double>(out.stats.backoff_failures);
    }
    const std::string tag = "e2e.n" + std::to_string(n);
    manifest.set(tag + ".slots_mean", slots_sum / std::max(1, ok));
    manifest.set(tag + ".micro_slots_mean", micro_sum / std::max(1, ok));
    manifest.set_int(tag + ".completed", ok);
    e2e.add_row({Table::num(static_cast<std::int64_t>(n)),
                 Table::num(static_cast<std::int64_t>(c)),
                 Table::num(static_cast<std::int64_t>(k)),
                 Table::num(slots_sum / std::max(1, ok), 1),
                 Table::num(micro_sum / std::max(1, ok), 1),
                 Table::num(safe_ratio(micro_sum, success_sum), 2),
                 Table::num(backoff_params_for(n).budget),
                 Table::num(fail_sum / std::max(1, ok), 2)});
  }
  e2e.print_with_title("CogCast end-to-end over the emulated radio");
  manifest.write();
  return 0;
}
