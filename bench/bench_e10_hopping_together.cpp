// E10 — Section 6 discussion: with global labels and c >> n, the
// hopping-together sequential scan beats CogCast.
//
// Paper example: c = n^2, k = c-1 on the Theorem 16 network. The scan
// completes in O(C/k) = O(1) expected slots, while CogCast needs
// O((c^2/(nk)) lg n) = O(n lg n). The second table sweeps k at fixed (n,c)
// to expose the crossover between the two algorithms.
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

Summary hopping_slots(int n, int c, int k, int trials,
                      std::uint64_t base_seed, int shards) {
  std::vector<double> samples;
  Rng seeder(base_seed);
  for (int t = 0; t < trials; ++t) {
    PartitionedAssignment assignment(n, c, k, LabelMode::Global,
                                     Rng(seeder()));
    BaselineRunConfig config;
    config.net.shards = shards;
    config.seed = seeder();
    config.max_slots = 8LL * assignment.total_channels();
    const auto out = run_hopping_together(assignment, config);
    if (out.completed) samples.push_back(static_cast<double>(out.slots));
  }
  return summarize(samples);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e10_hopping_together", &args);

  std::printf("E10: hopping-together vs CogCast   (Section 6 discussion, "
              "%d trials/point)\n",
              trials);

  Table example({"n", "c=n^2", "k=c-1", "C", "hopping med",
                 "cogcast med", "cogcast theory n*lg n"});
  for (int n : {3, 4, 5, 6, 8}) {
    const int c = n * n;
    const int k = c - 1;
    const int big_c = k + n * (c - k);
    const Summary hop = hopping_slots(n, c, k, trials, seed + n, shards);
    const Summary cog =
        cogcast_slots("partitioned", n, c, k, trials, seed + 100 + n, jobs, 4.0, shards);
    manifest.add_summary("example.n" + std::to_string(n) + ".hopping", hop);
    manifest.add_summary("example.n" + std::to_string(n) + ".cogcast", cog);
    example.add_row({Table::num(static_cast<std::int64_t>(n)),
                     Table::num(static_cast<std::int64_t>(c)),
                     Table::num(static_cast<std::int64_t>(k)),
                     Table::num(static_cast<std::int64_t>(big_c)),
                     Table::num(hop.median, 1), Table::num(cog.median, 1),
                     Table::num(n * std::log2(std::max(2, n)), 1)});
  }
  example.print_with_title("the paper's worked example (c = n^2, k = c-1)");

  Table crossover({"k", "C", "hopping med (C/k)", "cogcast med",
                   "winner"});
  const int n = 8, c = 32;
  for (int k : {1, 2, 4, 8, 16, 31}) {
    const int big_c = k + n * (c - k);
    const Summary hop = hopping_slots(n, c, k, trials, seed + 200 + k, shards);
    const Summary cog =
        cogcast_slots("partitioned", n, c, k, trials, seed + 300 + k, jobs, 4.0, shards);
    manifest.add_summary("crossover.k" + std::to_string(k) + ".hopping", hop);
    manifest.add_summary("crossover.k" + std::to_string(k) + ".cogcast", cog);
    crossover.add_row({Table::num(static_cast<std::int64_t>(k)),
                       Table::num(static_cast<std::int64_t>(big_c)),
                       Table::num(hop.median, 1), Table::num(cog.median, 1),
                       hop.median < cog.median ? "hopping" : "cogcast"});
  }
  crossover.print_with_title("crossover sweep (n=8, c=32, Theorem 16 network)");
  manifest.write();
  return 0;
}
