// E7 — Lemma 11: the (c,k)-bipartite hitting game needs >= c^2/(alpha k)
// rounds to win with probability 1/2 (alpha = 2(beta/(beta-1))^2, beta=c/k).
//
// The harness plays the uniform and fresh-proposal players against the
// uniform-matching referee and reports (a) the empirical win rate within
// the Lemma 11 round budget — which must stay below 1/2 — and (b) the
// median win round, which should track c^2/k.
#include <cstdio>

#include "bench_common.h"
#include "lowerbounds/hitting_game.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e7_hitting_game", &args);

  std::printf("E7: (c,k)-bipartite hitting game   (Lemma 11, %d trials/point)\n",
              trials);

  ParallelSweep pool(jobs);
  for (const bool fresh : {false, true}) {
    Table table({"c", "k", "lemma11 budget", "win rate in budget",
                 "median win round", "median/(c^2/k)"});
    for (int c : {16, 32, 64}) {
      for (int k : {2, c / 8, c / 2}) {
        if (k < 1 || 2 * k > c) continue;
        const auto budget =
            static_cast<std::int64_t>(lemma11_round_bound(c, k));
        std::vector<GameResult> outcomes(static_cast<std::size_t>(trials));
        pool.run(trials, [&](int t) {
          Rng rng = trial_rng(seed + static_cast<std::uint64_t>(c * 100 + k),
                              static_cast<std::uint64_t>(t));
          HittingGameReferee ref(c, k, Rng(rng()));
          std::unique_ptr<HittingGamePlayer> player;
          if (fresh)
            player = std::make_unique<FreshPlayer>(c, Rng(rng()));
          else
            player = std::make_unique<UniformPlayer>(c, Rng(rng()));
          outcomes[static_cast<std::size_t>(t)] =
              play(ref, *player, 64LL * c * c);  // generous cap
        });
        int wins_in_budget = 0;
        std::vector<double> win_rounds;
        for (const GameResult& result : outcomes) {
          if (result.won && result.rounds <= budget) ++wins_in_budget;
          if (result.won)
            win_rounds.push_back(static_cast<double>(result.rounds));
        }
        const double rate = static_cast<double>(wins_in_budget) / trials;
        const double median = summarize(win_rounds).median;
        const std::string tag = std::string(fresh ? "fresh" : "uniform") +
                                ".c" + std::to_string(c) + ".k" +
                                std::to_string(k);
        manifest.set(tag + ".win_rate_in_budget", rate);
        manifest.set(tag + ".median_win_round", median);
        table.add_row({Table::num(static_cast<std::int64_t>(c)),
                       Table::num(static_cast<std::int64_t>(k)),
                       Table::num(budget), Table::num(rate, 3),
                       Table::num(median, 1),
                       Table::num(median / (static_cast<double>(c) * c / k), 3)});
      }
    }
    table.print_with_title(fresh ? "fresh (no-repeat) player"
                                 : "uniform player");
  }
  std::printf("\nLemma 11 predicts every row's 'win rate in budget' < 0.5.\n");
  manifest.write();
  return 0;
}
