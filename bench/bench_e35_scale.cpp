// E35 — million-node slot-engine scaling (EngineLayout tentpole).
//
// Not a paper claim but the enabler of large-n sweeps: the structure-of-
// arrays hot path (sim/network.cpp, EngineLayout::SoA) plus the BatchClient
// traffic interface must push the slot engine far past the per-node
// reference layout. The workload is a duty-cycled fleet (one of
// kDutyPeriod node residue classes awake per slot, ~1% activity) — the
// mostly-idle regime large deployments actually sit in, and the one where
// the layouts separate: AoS pays a virtual call per node per slot while
// the batch path is O(active). This harness pins that down three ways:
//
//   * equivalence — one fixed workload stepped under AoS-protocol,
//     SoA-protocol, and SoA-batch must finish with byte-identical
//     TraceStats (deterministic equiv.* metrics, always 1);
//   * throughput — node-slots/sec of the three legs at --n, with the
//     SoA/AoS and batch/AoS ratios recorded as *deterministic* speedup
//     metrics so the regression gate can trip on a hot-path cliff (the
//     committed baseline pins batch_vs_aos >= 5x; per-leg rates stay
//     volatile);
//   * scale — a doubling sweep of the batch leg up to --sweep-max
//     (default 2^20 nodes) whose per-n rates should stay near-flat, and a
//     steady-state allocation probe at --alloc-n (default 10^5) that must
//     report ZERO heap allocations for both traffic interfaces.
//
// With --compare BASELINE [--tolerances FILE] the run self-gates: its
// manifest is diffed against the committed baseline via the same
// compare_bench_manifests used by `cograd bench`, and the exit code
// reflects the gate verdict (the CI perf-smoke step runs exactly this at
// reduced --slots; the n values never change, so metric names and the
// deterministic section stay comparable).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/assignment.h"
#include "sim/network.h"
#include "util/bench_gate.h"
#include "util/bench_report.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter (same technique as E18): replacing the global
// operator new/delete pairs observes every heap allocation the engine
// makes, including those inside standard containers.
namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace cogradio {
namespace {

constexpr int kChannelsPerNode = 16;
constexpr int kOverlap = 4;

// Duty cycle of the workload: each slot exactly one of kDutyPeriod node
// residue classes is awake, so ~1% of the fleet acts per slot. This is the
// regime the batch interface is built for — epochs of a large deployment
// where most radios are waiting out their phase — and it is where the
// layouts separate: the AoS reference still pays a virtual call per node
// per slot, while the SoA batch path does O(active) work.
constexpr int kDutyPeriod = 100;

inline std::uint64_t chatter_mix(std::uint64_t x) {
  x ^= x >> 29;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 32;
  return x;
}

// The residue class that is awake this slot.
inline int chatter_phase(Slot slot) {
  return static_cast<int>(
      chatter_mix(static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull) %
      static_cast<std::uint64_t>(kDutyPeriod));
}

// Deterministic feedback-oblivious traffic shared by the per-node protocol
// and the batch client: a pure hash of (slot, node) decides mode, label and
// payload, so all three legs offer byte-identical load and their final
// TraceStats must agree exactly (the equiv.* metrics).
struct ChatterDecision {
  Mode mode = Mode::Idle;
  LocalLabel label = 0;
};

// Decision for an awake node (callers check the duty phase first).
inline ChatterDecision chatter(Slot slot, NodeId node) {
  const std::uint64_t h =
      chatter_mix(static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull +
                  static_cast<std::uint64_t>(node) * 0xBF58476D1CE4E5B9ull);
  ChatterDecision d;
  const std::uint64_t roll = h % 10;
  if (roll == 0) return d;  // idle even within its duty phase
  d.mode = roll < 5 ? Mode::Broadcast : Mode::Listen;
  d.label = static_cast<LocalLabel>((h >> 8) %
                                    static_cast<std::uint64_t>(kChannelsPerNode));
  return d;
}

inline Message chatter_msg(Slot slot, NodeId node) {
  Message m;
  m.type = MessageType::Data;
  m.a = slot * 1000 + node;
  return m;
}

class ChatterNode : public Protocol {
 public:
  explicit ChatterNode(NodeId id) : id_(id) {}

  Action on_slot(Slot slot) override {
    if (id_ % kDutyPeriod != chatter_phase(slot)) return Action::idle();
    const ChatterDecision d = chatter(slot, id_);
    switch (d.mode) {
      case Mode::Broadcast:
        return Action::broadcast(d.label, chatter_msg(slot, id_));
      case Mode::Listen:
        return Action::listen(d.label);
      case Mode::Idle:
        break;
    }
    return Action::idle();
  }
  void on_feedback(Slot, const SlotResult& result) override {
    sink_ += result.tx_success ? 1 : 0;
  }
  bool done() const override { return false; }

  std::int64_t sink_ = 0;  // keeps feedback from being optimized away

 private:
  NodeId id_;
};

class ChatterClient : public BatchClient {
 public:
  explicit ChatterClient(int n) : n_(n) {}

  void begin_slot(Slot slot, std::span<Mode> mode,
                  std::span<LocalLabel> label) override {
    // The mode span arrives Idle-prefilled, so only the awake residue
    // class needs writing: this is the O(active) slot cost the batched
    // interface exists for.
    for (NodeId u = chatter_phase(slot); u < n_; u += kDutyPeriod) {
      const ChatterDecision d = chatter(slot, u);
      mode[static_cast<std::size_t>(u)] = d.mode;
      label[static_cast<std::size_t>(u)] = d.label;
    }
  }
  Message source_message(Slot slot, NodeId node) override {
    return chatter_msg(slot, node);
  }
  void end_slot(const BatchFeedback& fb) override {
    // Touch the feedback like a real consumer would, over the nodes this
    // client knows it woke (the protocol twin's on_feedback does the
    // equivalent single-node read).
    for (NodeId u = chatter_phase(fb.slot); u < n_; u += kDutyPeriod)
      sink_ += (fb.flags[static_cast<std::size_t>(u)] & slotflag::kTxSuccess)
                   ? 1
                   : 0;
  }
  bool done() const override { return false; }

  std::int64_t sink_ = 0;

 private:
  int n_;
};

struct LegResult {
  double node_slots_per_sec = 0.0;
  TraceStats stats;
};

NetworkOptions leg_options(EngineLayout layout) {
  NetworkOptions opt;
  opt.layout = layout;
  opt.seed = 35;
  opt.loss_prob = 0.125;  // keeps the fade-coin path on the measured track
  return opt;
}

// One per-node-protocol leg: fixed topology, warmup (sizes the scratch),
// timed window.
LegResult run_protocol_leg(EngineLayout layout, int n, int warmup, int slots) {
  SharedCoreAssignment assignment(n, kChannelsPerNode, kOverlap,
                                  LabelMode::LocalRandom, Rng(1));
  std::vector<std::unique_ptr<ChatterNode>> nodes;
  std::vector<Protocol*> protocols;
  nodes.reserve(static_cast<std::size_t>(n));
  protocols.reserve(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<ChatterNode>(u));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, std::move(protocols), leg_options(layout));
  for (int s = 0; s < warmup; ++s) net.step();
  const double start = monotonic_seconds();
  for (int s = 0; s < slots; ++s) net.step();
  const double elapsed = monotonic_seconds() - start;
  LegResult out;
  out.node_slots_per_sec = static_cast<double>(n) * slots / elapsed;
  out.stats = net.stats();
  return out;
}

// The SoA batch-client leg over the identical topology and traffic.
LegResult run_batch_leg(int n, int warmup, int slots) {
  SharedCoreAssignment assignment(n, kChannelsPerNode, kOverlap,
                                  LabelMode::LocalRandom, Rng(1));
  ChatterClient client(n);
  Network net(assignment, client, leg_options(EngineLayout::SoA));
  for (int s = 0; s < warmup; ++s) net.step();
  const double start = monotonic_seconds();
  for (int s = 0; s < slots; ++s) net.step();
  const double elapsed = monotonic_seconds() - start;
  LegResult out;
  out.node_slots_per_sec = static_cast<double>(n) * slots / elapsed;
  out.stats = net.stats();
  return out;
}

// Steady-state allocation count of a window of steps after warmup.
template <typename StepFn>
std::uint64_t count_window_allocs(StepFn&& step, int warmup, int window) {
  for (int s = 0; s < warmup; ++s) step();
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int s = 0; s < window; ++s) step();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Self-gate: diff this run's manifest against a committed baseline with
// the shared bench gate. Returns the process exit code.
int self_gate(const RunManifest& manifest, const std::string& compare_path,
              const std::string& tolerances_path) {
  std::string error;
  const auto current = parse_json(manifest.to_json(), &error);
  if (!current) {
    std::fprintf(stderr, "e35: own manifest invalid: %s\n", error.c_str());
    return 1;
  }
  const auto baseline_text = read_file(compare_path);
  if (!baseline_text) {
    std::fprintf(stderr, "e35: cannot read baseline %s\n",
                 compare_path.c_str());
    return 1;
  }
  const auto baseline = parse_json(*baseline_text, &error);
  if (!baseline) {
    std::fprintf(stderr, "e35: baseline %s invalid: %s\n",
                 compare_path.c_str(), error.c_str());
    return 1;
  }
  GateTolerances tolerances;
  if (!tolerances_path.empty()) {
    const auto text = read_file(tolerances_path);
    if (!text) {
      std::fprintf(stderr, "e35: cannot read tolerances %s\n",
                   tolerances_path.c_str());
      return 1;
    }
    const auto doc = parse_json(*text, &error);
    std::optional<GateTolerances> parsed;
    if (doc) parsed = parse_tolerances(*doc, &error);
    if (!parsed) {
      std::fprintf(stderr, "e35: tolerances %s invalid: %s\n",
                   tolerances_path.c_str(), error.c_str());
      return 1;
    }
    tolerances = *parsed;
  }
  const GateResult result =
      compare_bench_manifests(*current, *baseline, tolerances);
  const std::string report = result.report();
  std::fputs(report.c_str(), stdout);
  return result.ok() ? 0 : 1;
}

int run(CliArgs& args) {
  const int n = static_cast<int>(args.get_int("n", 4096));
  const int slots = static_cast<int>(args.get_int("slots", 2048));
  const int warmup = static_cast<int>(args.get_int("warmup", 256));
  const std::int64_t sweep_max = args.get_int("sweep-max", std::int64_t{1} << 20);
  const int alloc_n = static_cast<int>(args.get_int("alloc-n", 100000));
  const std::string compare_path = args.get_string("compare", "");
  const std::string tolerances_path = args.get_string("tolerances", "");
  args.finish();

  std::printf("E35: slot-engine layout scaling (n=%d, c=%d, k=%d)\n\n", n,
              kChannelsPerNode, kOverlap);
  bench::BenchManifest manifest("e35_scale", &args);

  // --- Throughput + equivalence at the headline n ------------------------
  LegResult aos, soa, batch;
  {
    auto t = manifest.phase("throughput");
    aos = run_protocol_leg(EngineLayout::AoS, n, warmup, slots);
    soa = run_protocol_leg(EngineLayout::SoA, n, warmup, slots);
    batch = run_batch_leg(n, warmup, slots);
  }
  const double soa_vs_aos = soa.node_slots_per_sec / aos.node_slots_per_sec;
  const double batch_vs_aos =
      batch.node_slots_per_sec / aos.node_slots_per_sec;
  std::printf("throughput (%d slots after %d warmup):\n", slots, warmup);
  std::printf("  %-14s  %18s  %8s\n", "leg", "node-slots/sec", "speedup");
  std::printf("  %-14s  %18.3e  %8s\n", "aos-protocol",
              aos.node_slots_per_sec, "1.00x");
  std::printf("  %-14s  %18.3e  %7.2fx\n", "soa-protocol",
              soa.node_slots_per_sec, soa_vs_aos);
  std::printf("  %-14s  %18.3e  %7.2fx\n", "soa-batch",
              batch.node_slots_per_sec, batch_vs_aos);
  manifest.manifest().set_volatile("aos.node_slots_per_sec",
                                   aos.node_slots_per_sec);
  manifest.manifest().set_volatile("soa.node_slots_per_sec",
                                   soa.node_slots_per_sec);
  manifest.manifest().set_volatile("batch.node_slots_per_sec",
                                   batch.node_slots_per_sec);
  // Deterministic ratios: machine-relative, gated with a generous
  // tolerance purely as a hot-path-cliff tripwire.
  manifest.set("speedup.soa_vs_aos", soa_vs_aos);
  manifest.set("speedup.batch_vs_aos", batch_vs_aos);

  const bool soa_matches = soa.stats == aos.stats;
  const bool batch_matches = batch.stats == aos.stats;
  std::printf("\nequivalence: soa-protocol %s aos, soa-batch %s aos\n",
              soa_matches ? "==" : "!=", batch_matches ? "==" : "!=");
  manifest.set_int("equiv.soa_protocol_matches_aos", soa_matches ? 1 : 0);
  manifest.set_int("equiv.soa_batch_matches_aos", batch_matches ? 1 : 0);

  // --- Scaling sweep (batch leg) ----------------------------------------
  {
    auto t = manifest.phase("sweep");
    std::printf("\nbatch-leg scaling sweep (4x steps, short windows):\n");
    std::printf("  %8s  %18s\n", "n", "node-slots/sec");
    for (std::int64_t sweep_n = 4096; sweep_n <= sweep_max; sweep_n *= 4) {
      // Keep roughly constant total node-slots per point so the million-
      // node legs stay affordable in CI.
      const int sweep_slots = static_cast<int>(
          std::max<std::int64_t>(16, (std::int64_t{1} << 22) / sweep_n));
      const int sweep_warmup = std::max(8, sweep_slots / 4);
      const LegResult r = run_batch_leg(static_cast<int>(sweep_n),
                                        sweep_warmup, sweep_slots);
      std::printf("  %8lld  %18.3e\n", static_cast<long long>(sweep_n),
                  r.node_slots_per_sec);
      manifest.manifest().set_volatile(
          "sweep.n" + std::to_string(sweep_n) + ".node_slots_per_sec",
          r.node_slots_per_sec);
    }
  }

  // --- Steady-state allocation probe ------------------------------------
  {
    auto t = manifest.phase("alloc");
    SharedCoreAssignment assignment(alloc_n, kChannelsPerNode, kOverlap,
                                    LabelMode::LocalRandom, Rng(1));
    std::uint64_t batch_allocs = 0;
    {
      ChatterClient client(alloc_n);
      Network net(assignment, client, leg_options(EngineLayout::SoA));
      batch_allocs = count_window_allocs([&] { net.step(); }, 64, 256);
    }
    std::uint64_t protocol_allocs = 0;
    {
      std::vector<std::unique_ptr<ChatterNode>> nodes;
      std::vector<Protocol*> protocols;
      for (NodeId u = 0; u < alloc_n; ++u) {
        nodes.push_back(std::make_unique<ChatterNode>(u));
        protocols.push_back(nodes.back().get());
      }
      Network net(assignment, std::move(protocols),
                  leg_options(EngineLayout::SoA));
      protocol_allocs = count_window_allocs([&] { net.step(); }, 64, 256);
    }
    std::printf("\nsteady-state allocs at n=%d (256 slots): batch %llu, "
                "protocol %llu\n",
                alloc_n, static_cast<unsigned long long>(batch_allocs),
                static_cast<unsigned long long>(protocol_allocs));
    manifest.set_int("alloc.batch_steady_state_allocs",
                     static_cast<std::int64_t>(batch_allocs));
    manifest.set_int("alloc.protocol_steady_state_allocs",
                     static_cast<std::int64_t>(protocol_allocs));
  }

  manifest.write();

  if (!compare_path.empty())
    return self_gate(manifest.manifest(), compare_path, tolerances_path);
  return 0;
}

}  // namespace
}  // namespace cogradio

int main(int argc, char** argv) {
  cogradio::CliArgs args(argc, argv);
  return cogradio::run(args);
}
