// E32 — calibrating the hidden constant of Theorem 4.
//
// The paper proves completion within Theta((c/k) max{1,c/n} lg n) slots
// "w.h.p." without fixing the constant. Everything in this repository
// uses gamma = 4 (CogCastParams::gamma). This harness justifies that
// choice empirically: for each gamma it runs many broadcasts and reports
// the fraction that finish within gamma * shape slots — the empirical
// failure probability of the w.h.p. statement — across patterns and
// sizes. gamma = 4 should sit comfortably in the ~zero-failure region
// while gamma <= 1 visibly fails.
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e32_gamma", &args);

  std::printf("E32: Theorem 4 constant calibration   (%d trials/cell; cell = "
              "fraction of runs exceeding gamma * shape)\n",
              trials);

  struct Config {
    const char* pattern;
    int n, c, k;
  };
  const Config configs[] = {{"partitioned", 64, 16, 2},
                            {"partitioned", 256, 32, 4},
                            {"shared-core", 64, 16, 2},
                            {"pigeonhole", 128, 16, 8}};

  Table table({"pattern", "n", "c", "k", "gamma 0.5", "gamma 1", "gamma 2",
               "gamma 4", "gamma 8"});
  for (const Config& cfg : configs) {
    std::vector<std::string> row{cfg.pattern,
                                 Table::num(static_cast<std::int64_t>(cfg.n)),
                                 Table::num(static_cast<std::int64_t>(cfg.c)),
                                 Table::num(static_cast<std::int64_t>(cfg.k))};
    // One set of completion samples per config; thresholds re-used.
    std::vector<double> slots(static_cast<std::size_t>(trials));
    ParallelSweep pool(jobs);
    pool.run(trials, [&](int t) {
      Rng rng = trial_rng(seed + static_cast<std::uint64_t>(cfg.n * 7 + cfg.c),
                          static_cast<std::uint64_t>(t));
      auto assignment = make_assignment(cfg.pattern, cfg.n, cfg.c, cfg.k,
                                        LabelMode::LocalRandom, Rng(rng()));
      CogCastRunConfig config;
      config.net.shards = shards;
      config.params = {cfg.n, cfg.c, cfg.k, 4.0};
      config.seed = rng();
      config.max_slots = 256 * config.params.horizon();
      const auto out = run_cogcast(*assignment, config);
      slots[static_cast<std::size_t>(t)] =
          out.completed ? static_cast<double>(out.slots) : 1e18;
    });
    const double shape =
        theorem4_shape_effective(cfg.pattern, cfg.n, cfg.c, cfg.k);
    const std::string tag = std::string(cfg.pattern) + ".n" +
                            std::to_string(cfg.n) + ".c" +
                            std::to_string(cfg.c) + ".k" +
                            std::to_string(cfg.k);
    for (double gamma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      int late = 0;
      for (double s : slots)
        if (s > gamma * shape) ++late;
      manifest.set(
          tag + ".late_frac.gamma" + std::to_string(static_cast<int>(gamma * 10)),
          static_cast<double>(late) / trials);
      row.push_back(Table::num(static_cast<double>(late) / trials, 3));
    }
    table.add_row(row);
  }
  table.print_with_title(
      "empirical P[completion > gamma * (c/k_eff) max{1,c/n} lg n]");
  std::printf("\nreading: the gamma=4 column (the repository default) should\n"
              "be ~0 everywhere — the 'high probability' made concrete.\n");
  manifest.write();
  return 0;
}
