// E9 — Theorem 16: under global channel labels, any algorithm needs
// expected Omega(c/k) slots — exactly (c+1)/(k+1) in the theorem's setup —
// because the source must first land on one of its k overlapping channels
// out of c, and the overlap positions are uniformly random.
//
// The harness simulates the two canonical source strategies on the
// Theorem 16 network (k shared channels + disjoint private blocks):
//   scan:    probe own channels in random order without repeats — the
//            optimal oblivious strategy; expected hit slot (c+1)/(k+1);
//   uniform: i.i.d. uniform hopping (CogCast's move); expectation c/k.
// It then runs full CogCast and reports the completion / lower-bound
// ratio, which Theorem 15/16 predict to be O(lg n).
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

// Slots until a source probing its c channels (k of which are "shared",
// in uniformly random positions) first hits a shared one.
double first_hit_scan(int c, int k, Rng& rng) {
  // Random probe order without repeats == random permutation; the hit slot
  // is the position of the first of the k shared channels.
  auto order = rng.sample_without_replacement(c, c);
  for (int slot = 1; slot <= c; ++slot)
    if (order[static_cast<std::size_t>(slot - 1)] < k) return slot;
  return c;
}

double first_hit_uniform(int c, int k, Rng& rng) {
  for (int slot = 1;; ++slot)
    if (rng.below(static_cast<std::uint64_t>(c)) <
        static_cast<std::uint64_t>(k))
      return slot;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 4000));
  const int cast_trials = static_cast<int>(args.get_int("cast-trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 32));
  args.finish();
  BenchManifest manifest("e9_global_lb", &args);

  std::printf("E9: global-label lower bound   (Theorem 16, %d trials/point)\n",
              trials);

  Table table({"c", "k", "theory (c+1)/(k+1)", "scan mean", "uniform mean",
               "uniform theory c/k"});
  Rng rng(seed);
  for (int c : {16, 32, 64}) {
    for (int k : {1, 2, 4, 8}) {
      double scan_sum = 0, uni_sum = 0;
      for (int t = 0; t < trials; ++t) {
        scan_sum += first_hit_scan(c, k, rng);
        uni_sum += first_hit_uniform(c, k, rng);
      }
      const std::string tag =
          "c" + std::to_string(c) + ".k" + std::to_string(k);
      manifest.set(tag + ".scan_mean", scan_sum / trials);
      manifest.set(tag + ".uniform_mean", uni_sum / trials);
      table.add_row({Table::num(static_cast<std::int64_t>(c)),
                     Table::num(static_cast<std::int64_t>(k)),
                     Table::num(static_cast<double>(c + 1) / (k + 1), 2),
                     Table::num(scan_sum / trials, 2),
                     Table::num(uni_sum / trials, 2),
                     Table::num(static_cast<double>(c) / k, 2)});
    }
  }
  table.print_with_title("slots until the source first hits an overlap channel");

  Table gap({"c", "k", "lower bound", "cogcast median (full bcast)",
             "ratio (theory O(lg n))"});
  for (int c : {16, 32}) {
    for (int k : {2, 4}) {
      const Summary s =
          cogcast_slots("partitioned", n, c, k, cast_trials, seed + c + k, jobs, 4.0, shards);
      const double lb = static_cast<double>(c + 1) / (k + 1);
      manifest.add_summary(
          "cogcast.c" + std::to_string(c) + ".k" + std::to_string(k), s);
      gap.add_row({Table::num(static_cast<std::int64_t>(c)),
                   Table::num(static_cast<std::int64_t>(k)),
                   Table::num(lb, 2), Table::num(s.median, 1),
                   Table::num(safe_ratio(s.median, lb), 2)});
    }
  }
  gap.print_with_title(
      "CogCast completion vs the lower bound on the Theorem 16 network (n=" +
      std::to_string(n) + ")");
  manifest.write();
  return 0;
}
