// E19 — robustness under simulator-level faults (Section 1 / Section 4
// discussion): "because nodes do the same thing in every slot, it can
// gracefully handle changes to the network conditions, temporary faults,
// and so on".
//
// Rewritten around sim/fault_engine.h: instead of protocol decorators, the
// harness injects radio-level faults inside the engine. Two sweeps:
//
//   burst/recovery   a correlated churn burst knocks out a growing node
//                    subset early in the broadcast; we measure the time to
//                    recover (completion slot minus burst end), survivor
//                    completion, and goodput under faults;
//   per-kind         a fixed budget of deaf / mute / babble / feedback-drop
//                    windows, measuring per-kind completion degradation
//                    against the fault-free baseline.
//
// The epidemic should degrade gracefully: recovery takes O(burst length +
// re-spread), never diverges, and no fault kind is fatal.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "sim/fault_engine.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

struct FaultedOutcome {
  bool completed = false;
  Slot slots = 0;
  Slot recover = 0;       // completion slot - burst end (bursts only)
  double goodput = 0.0;   // channel successes per slot
  int informed = 0;       // nodes informed at exit (survivor completion)
};

// One CogCast run with a FaultEngine attached. `configure` schedules the
// trial's fault windows on the engine before the run starts.
template <typename Configure>
FaultedOutcome run_faulted(int n, int c, int k, std::uint64_t seed,
                           Configure configure) {
  Rng root(seed);
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                  root.split(1));
  Rng seeder(root.split(2)());
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  FaultEngine engine(n, c, root.split(3));
  Rng schedule = root.split(4);
  configure(engine, schedule);
  NetworkOptions net;
  net.seed = root.split(5)();
  Network network(assignment, std::move(protocols), net);
  network.set_fault_engine(&engine);
  network.run(500'000);

  FaultedOutcome out;
  out.slots = network.now();
  out.completed = true;
  for (const auto& node : nodes) {
    out.informed += node->informed() ? 1 : 0;
    out.completed = out.completed && node->informed();
  }
  if (out.completed && engine.last_burst_end() != kNoSlot)
    out.recover = std::max<Slot>(0, out.slots - engine.last_burst_end());
  out.goodput = out.slots > 0 ? static_cast<double>(network.stats().successes) /
                                    static_cast<double>(out.slots)
                              : 0.0;
  return out;
}

struct SweepResult {
  Summary slots;
  Summary recover;
  Summary goodput;
  int failures = 0;      // runs that hit the cap with nodes uninformed
  int informed_min = 0;  // worst-case survivor completion across trials
};

template <typename Configure>
SweepResult sweep(int n, int c, int k, int trials, std::uint64_t base_seed,
                  int jobs, Configure configure) {
  std::vector<FaultedOutcome> outcomes(static_cast<std::size_t>(trials));
  ParallelSweep pool(jobs);
  pool.run(trials, [&](int t) {
    Rng rng = trial_rng(base_seed, static_cast<std::uint64_t>(t));
    outcomes[static_cast<std::size_t>(t)] =
        run_faulted(n, c, k, rng(), configure);
  });
  SweepResult res;
  res.informed_min = n;
  std::vector<double> slots, recover, goodput;
  for (const FaultedOutcome& out : outcomes) {
    res.informed_min = std::min(res.informed_min, out.informed);
    goodput.push_back(out.goodput);
    if (!out.completed) {
      ++res.failures;
      continue;
    }
    slots.push_back(static_cast<double>(out.slots));
    recover.push_back(static_cast<double>(out.recover));
  }
  res.slots = summarize(slots);
  res.recover = summarize(recover);
  res.goodput = summarize(goodput);
  return res;
}

void add_result(BenchManifest& manifest, const std::string& prefix,
                const SweepResult& res) {
  manifest.add_summary(prefix + ".slots", res.slots);
  manifest.add_summary(prefix + ".recover", res.recover);
  manifest.add_summary(prefix + ".goodput", res.goodput);
  manifest.set_int(prefix + ".failures", res.failures);
  manifest.set_int(prefix + ".informed_min", res.informed_min);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  const int n = static_cast<int>(args.get_int("n", 48));
  const int c = static_cast<int>(args.get_int("c", 12));
  const int k = static_cast<int>(args.get_int("k", 3));
  const Slot burst_len = args.get_int("burst-len", 24);
  args.finish();
  BenchManifest manifest("e19_fault_robustness", &args);

  std::printf("E19: CogCast recovery under engine-level faults   "
              "(n=%d, c=%d, k=%d, %d trials/point)\n",
              n, c, k, trials);

  const SweepResult base = sweep(n, c, k, trials, seed, jobs,
                                 [](FaultEngine&, Rng&) {});
  add_result(manifest, "fault_free", base);

  // --- Correlated churn bursts: knock out a subset, measure recovery. ----
  Table burst({"burst nodes", "window", "median slots", "time-to-recover",
               "goodput", "vs fault-free", "failed runs"});
  burst.add_row({"0", "-", Table::num(base.slots.median, 1), "-",
                 Table::num(base.goodput.median, 2), "1.00",
                 Table::num(static_cast<std::int64_t>(base.failures))});
  for (int affected : {n / 8, n / 4, n / 2}) {
    const SweepResult res = sweep(
        n, c, k, trials, seed + 100 + static_cast<std::uint64_t>(affected),
        jobs, [&](FaultEngine& engine, Rng& rng) {
          // Random subset excluding the source, hit over [5, 5+len).
          const auto picks = rng.sample_without_replacement(n - 1, affected);
          std::vector<NodeId> hit;
          for (const auto u : picks) hit.push_back(u + 1);
          engine.add_burst(hit, /*from=*/5, burst_len);
        });
    add_result(manifest, "burst.a" + std::to_string(affected), res);
    char window[32];
    std::snprintf(window, sizeof(window), "[5, %lld)",
                  static_cast<long long>(5 + burst_len));
    burst.add_row({Table::num(static_cast<std::int64_t>(affected)), window,
                   Table::num(res.slots.median, 1),
                   Table::num(res.recover.median, 1),
                   Table::num(res.goodput.median, 2),
                   Table::num(safe_ratio(res.slots.median, base.slots.median), 2),
                   Table::num(static_cast<std::int64_t>(res.failures))});
  }
  burst.print_with_title("correlated churn bursts (recovery telemetry)");

  // --- Per-kind degradation: a fixed budget of each radio pathology. ------
  struct KindCase {
    const char* name;
    FaultProfile profile;
  };
  const int budget = std::max(1, n / 6);
  const KindCase kinds[] = {
      {"deaf", {budget, 0, 0, 0, 0, 0, 0}},
      {"mute", {0, budget, 0, 0, 0, 0, 0}},
      {"babble", {0, 0, budget, 0, 0, 0, 0}},
      {"feedback_drop", {0, 0, 0, budget, 0, 0, 0}},
      {"churn", {0, 0, 0, 0, budget, 0, 0}},
  };
  Table kind_table({"fault kind", "faulty nodes", "median slots", "goodput",
                    "vs fault-free", "failed runs"});
  // Draw windows across the *active* part of the run: the fault-free
  // epidemic finishes in ~median slots, so a horizon of twice that keeps
  // every scheduled window relevant instead of landing after completion.
  const Slot horizon =
      std::max<Slot>(8, static_cast<Slot>(2 * base.slots.median));
  std::uint64_t salt = 500;
  for (const KindCase& kc : kinds) {
    const SweepResult res = sweep(n, c, k, trials, seed + salt++, jobs,
                                  [&](FaultEngine& engine, Rng&) {
                                    engine.add_random(kc.profile, horizon);
                                  });
    add_result(manifest, std::string("kind.") + kc.name, res);
    kind_table.add_row(
        {kc.name, Table::num(static_cast<std::int64_t>(budget)),
         Table::num(res.slots.median, 1), Table::num(res.goodput.median, 2),
         Table::num(safe_ratio(res.slots.median, base.slots.median), 2),
         Table::num(static_cast<std::int64_t>(res.failures))});
  }
  kind_table.print_with_title("per-kind degradation (budgeted windows)");

  std::printf("\ntheory: the oblivious epidemic resumes as soon as faults\n"
              "clear; recovery is O(burst length + re-spread) and no kind\n"
              "is fatal (Section 4 discussion).\n");
  manifest.write();
  return 0;
}
