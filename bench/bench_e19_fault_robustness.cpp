// E19 — robustness ablation (Section 1 / Section 4 discussion): "because
// nodes do the same thing in every slot, it can gracefully handle changes
// to the network conditions, temporary faults, and so on".
//
// The harness crashes a growing fraction of nodes mid-broadcast and
// measures the time for all *survivors* to be informed; it then repeats
// with temporary outages instead of crashes. The epidemic should degrade
// gracefully: completion grows mildly with the crash fraction and recovers
// fully from outages.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "sim/fault.h"
#include "sim/network.h"

using namespace cogradio;
using namespace cogradio::bench;

namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

struct FaultOutcome {
  bool survivors_informed = false;
  Slot slots = 0;
};

enum class FaultKind { None, Crash, Outage };

FaultOutcome run_faulty(int n, int c, int k, FaultKind kind, int affected,
                        Slot fault_slot, Slot fault_len, std::uint64_t seed) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed * 31 + 1);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<std::unique_ptr<Protocol>> wrappers;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    const bool hit = u >= n - affected;  // never the source (node 0)
    if (hit && kind == FaultKind::Crash) {
      wrappers.push_back(std::make_unique<CrashFault>(*nodes.back(), fault_slot));
      protocols.push_back(wrappers.back().get());
    } else if (hit && kind == FaultKind::Outage) {
      wrappers.push_back(std::make_unique<OutageFault>(
          *nodes.back(), fault_slot, fault_slot + fault_len));
      protocols.push_back(wrappers.back().get());
    } else {
      protocols.push_back(nodes.back().get());
    }
  }
  Network net(assignment, protocols);
  net.run(500'000);
  FaultOutcome out;
  out.slots = net.now();
  out.survivors_informed = true;
  const int survivors = kind == FaultKind::Crash ? n - affected : n;
  for (NodeId u = 0; u < survivors; ++u)
    out.survivors_informed =
        out.survivors_informed && nodes[static_cast<std::size_t>(u)]->informed();
  return out;
}

Summary sweep(int n, int c, int k, FaultKind kind, int affected,
              Slot fault_slot, Slot fault_len, int trials,
              std::uint64_t base_seed, int jobs, int* failures) {
  std::vector<FaultOutcome> outcomes(static_cast<std::size_t>(trials));
  ParallelSweep pool(jobs);
  pool.run(trials, [&](int t) {
    Rng rng = trial_rng(base_seed, static_cast<std::uint64_t>(t));
    outcomes[static_cast<std::size_t>(t)] =
        run_faulty(n, c, k, kind, affected, fault_slot, fault_len, rng());
  });
  std::vector<double> samples;
  for (const FaultOutcome& out : outcomes) {
    if (out.survivors_informed)
      samples.push_back(static_cast<double>(out.slots));
    else
      ++*failures;
  }
  return summarize(samples);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int n = static_cast<int>(args.get_int("n", 48));
  const int c = static_cast<int>(args.get_int("c", 12));
  const int k = static_cast<int>(args.get_int("k", 3));
  args.finish();
  BenchManifest manifest("e19_fault_robustness", &args);

  std::printf("E19: CogCast fault robustness   (n=%d, c=%d, k=%d, "
              "%d trials/point)\n",
              n, c, k, trials);

  int failures = 0;
  const Summary base =
      sweep(n, c, k, FaultKind::None, 0, 0, 0, trials, seed, jobs, &failures);
  manifest.add_summary("fault_free", base);

  Table crash({"crashed nodes", "crash slot", "median (survivors)", "p95",
               "vs fault-free", "failed runs"});
  crash.add_row({"0", "-", Table::num(base.median, 1), Table::num(base.p95, 1),
                 "1.00", Table::num(static_cast<std::int64_t>(failures))});
  for (int affected : {n / 8, n / 4, n / 2}) {
    failures = 0;
    const Summary s = sweep(n, c, k, FaultKind::Crash, affected,
                            /*fault_slot=*/5, 0, trials,
                            seed + static_cast<std::uint64_t>(affected), jobs,
                            &failures);
    manifest.add_summary("crash.a" + std::to_string(affected), s);
    manifest.set_int("crash.a" + std::to_string(affected) + ".failures",
                     failures);
    crash.add_row({Table::num(static_cast<std::int64_t>(affected)), "5",
                   Table::num(s.median, 1), Table::num(s.p95, 1),
                   Table::num(safe_ratio(s.median, base.median), 2),
                   Table::num(static_cast<std::int64_t>(failures))});
  }
  crash.print_with_title("crash faults mid-broadcast");

  Table outage({"nodes in outage", "window", "median (all informed)", "p95",
                "vs fault-free", "failed runs"});
  for (int affected : {n / 4, n / 2, n - 1}) {
    failures = 0;
    const Summary s = sweep(n, c, k, FaultKind::Outage, affected,
                            /*fault_slot=*/3, /*fault_len=*/20, trials,
                            seed + 500 + static_cast<std::uint64_t>(affected),
                            jobs, &failures);
    manifest.add_summary("outage.a" + std::to_string(affected), s);
    manifest.set_int("outage.a" + std::to_string(affected) + ".failures",
                     failures);
    char window[32];
    std::snprintf(window, sizeof(window), "[3, 23)");
    outage.add_row({Table::num(static_cast<std::int64_t>(affected)), window,
                    Table::num(s.median, 1), Table::num(s.p95, 1),
                    Table::num(safe_ratio(s.median, base.median), 2),
                    Table::num(static_cast<std::int64_t>(failures))});
  }
  outage.print_with_title("temporary outages (nodes deaf then recover)");
  std::printf("\ntheory: survivors always complete; outages add at most the\n"
              "window length (the epidemic resumes, Section 4 discussion).\n");
  manifest.write();
  return 0;
}
