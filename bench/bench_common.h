// Shared helpers for the experiment harnesses (bench/bench_e*.cpp).
//
// Every harness regenerates one "figure/table" from the paper — a theorem,
// lemma or worked example (see DESIGN.md §5 and EXPERIMENTS.md) — by running
// Monte-Carlo sweeps and printing paper-style rows: parameter, theoretical
// value, measured median, and their ratio. Flags shared by all harnesses:
//   --trials N   trials per configuration (default varies per bench)
//   --seed S     base seed (default 1)
//   --jobs J     ParallelSweep workers (default 1; 0 = all cores). Medians
//                are bit-identical for any J — see util/sweep.h.
// Every harness also emits a machine-readable BENCH_<exp>.json run manifest
// through the BenchManifest hook below — config comes for free from the
// CliArgs resolved-flag log, headline metrics are registered next to the
// printf rows, and `cograd bench --validate` / the regression gate consume
// the result. See util/bench_report.h for the manifest schema.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bench_suite.h"  // add_trace_stats
#include "core/runtime.h"
#include "sim/assignment.h"
#include "util/bench_report.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/sweep.h"
#include "util/table.h"

namespace cogradio::bench {

// The per-harness telemetry hook: construct one at the top of main (after
// CliArgs), register headline metrics inside the existing sweep loops, and
// call write() before returning.
//
//   BenchManifest manifest("e1_cogcast_vs_c", &args);
//   ...
//   manifest.add_summary("partitioned.c8", summary);
//   manifest.write();   // -> BENCH_e1_cogcast_vs_c.json
//
// The resolved CliArgs flags become the manifest's config section (--jobs
// and --shards are routed to the volatile section: neither affects results
// — see util/sweep.h and sim/network.h — and the merged BENCH_all.json
// must be invariant under both).
// Wall-clock and phase() timings are volatile too. Harnesses without
// CliArgs (E18's google-benchmark main) pass nullptr and fill config
// explicitly.
class BenchManifest {
 public:
  explicit BenchManifest(std::string experiment, CliArgs* args = nullptr)
      : manifest_(std::move(experiment)),
        args_(args),
        start_(monotonic_seconds()) {}

  RunManifest& manifest() { return manifest_; }

  void set(const std::string& key, double value) { manifest_.set(key, value); }
  void set_int(const std::string& key, std::int64_t value) {
    manifest_.set_int(key, value);
  }

  // The headline slice of a sweep Summary: sample count (pins censoring),
  // median and p95.
  void add_summary(const std::string& prefix, const Summary& s) {
    manifest_.set_int(prefix + ".count", static_cast<std::int64_t>(s.count));
    manifest_.set(prefix + ".median", s.median);
    manifest_.set(prefix + ".p95", s.p95);
  }

  void add_trace_stats(const std::string& prefix, const TraceStats& stats) {
    cogradio::add_trace_stats(manifest_, prefix, stats);
  }

  // Scoped wall-clock timer for a harness section; records the volatile
  // metric phase.<name>.seconds when the returned guard dies. Timing goes
  // through monotonic_seconds() — the lint R1 contract keeps raw clock
  // calls confined to util/bench_report.cpp.
  class PhaseTimer {
   public:
    PhaseTimer(BenchManifest& owner, std::string name)
        : owner_(owner),
          name_(std::move(name)),
          start_(monotonic_seconds()) {}
    ~PhaseTimer() {
      owner_.manifest_.set_volatile("phase." + name_ + ".seconds",
                                    monotonic_seconds() - start_);
    }
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

   private:
    BenchManifest& owner_;
    std::string name_;
    double start_;
  };

  [[nodiscard]] PhaseTimer phase(std::string name) {
    return PhaseTimer(*this, std::move(name));
  }

  // Captures config + volatile timing and writes BENCH_<exp>.json.
  bool write() {
    if (args_ != nullptr) {
      for (const auto& flag : args_->resolved()) {
        if (flag.name == "jobs" || flag.name == "shards") {
          manifest_.set_volatile_int(flag.name,
                                     std::atoll(flag.value.c_str()));
          continue;
        }
        switch (flag.kind) {
          case CliArgs::ResolvedFlag::Kind::Int:
            manifest_.set_config_int(flag.name,
                                     std::atoll(flag.value.c_str()));
            break;
          case CliArgs::ResolvedFlag::Kind::Double:
            manifest_.set_config_double(flag.name,
                                        std::atof(flag.value.c_str()));
            break;
          case CliArgs::ResolvedFlag::Kind::Bool:
            manifest_.set_config_bool(flag.name, flag.value == "true");
            break;
          case CliArgs::ResolvedFlag::Kind::String:
            manifest_.set_config_string(flag.name, flag.value);
            break;
        }
      }
    }
    manifest_.set_volatile("wall_clock_seconds",
                           monotonic_seconds() - start_);
    const std::string path = manifest_.default_path();
    if (!manifest_.write(path)) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  RunManifest manifest_;
  CliArgs* args_;
  double start_;
};

// The one generic Monte-Carlo entry point behind every harness trial loop:
// runs `trials` executions of `fn(pattern, rng)` fanned out over `jobs`
// workers and summarizes the surviving samples. `fn` returns the trial's
// sample, or nullopt for censored trials (hit a slot cap). Trial t's `rng`
// is a pure function of (base_seed, t), so the Summary is bit-identical
// for any `jobs` value.
template <typename Fn>
inline Summary run_trials(const std::string& pattern, int trials,
                          std::uint64_t base_seed, int jobs, Fn&& fn) {
  return summarize(sweep_trials(
      trials, base_seed, jobs, [&](Rng& rng) { return fn(pattern, rng); }));
}

// Median CogCast completion slots over `trials` independent topologies and
// executions of the given static/dynamic pattern.
inline Summary cogcast_slots(const std::string& pattern, int n, int c, int k,
                             int trials, std::uint64_t base_seed, int jobs = 1,
                             double gamma = 4.0, int shards = 1) {
  return run_trials(
      pattern, trials, base_seed, jobs,
      [&](const std::string& pat, Rng& rng) -> std::optional<double> {
        const std::uint64_t s1 = rng();
        const std::uint64_t s2 = rng();
        auto assignment =
            make_assignment(pat, n, c, k, LabelMode::LocalRandom, Rng(s1));
        CogCastRunConfig config;
        config.params = {n, c, k, gamma};
        config.seed = s2;
        config.max_slots = 64 * config.params.horizon();
        config.net.shards = shards;
        const auto out = run_cogcast(*assignment, config);
        if (!out.completed) return std::nullopt;
        return static_cast<double>(out.slots);
      });
}

// Median completion of the rendezvous-broadcast baseline on the same kind
// of topologies.
inline Summary rendezvous_broadcast_slots(const std::string& pattern, int n,
                                          int c, int k, int trials,
                                          std::uint64_t base_seed,
                                          int jobs = 1, int shards = 1) {
  return run_trials(
      pattern, trials, base_seed, jobs,
      [&](const std::string& pat, Rng& rng) -> std::optional<double> {
        const std::uint64_t s1 = rng();
        const std::uint64_t s2 = rng();
        auto assignment =
            make_assignment(pat, n, c, k, LabelMode::LocalRandom, Rng(s1));
        BaselineRunConfig config;
        config.seed = s2;
        config.max_slots = 4'000'000;
        config.net.shards = shards;
        const auto out = run_rendezvous_broadcast(*assignment, config);
        if (!out.completed) return std::nullopt;
        return static_cast<double>(out.slots);
      });
}

// Theorem 4 horizon without the constant: (c/k) * max{1, c/n} * lg n.
inline double theorem4_shape(int n, int c, int k) {
  const double lg = std::log2(std::max(2.0, static_cast<double>(n)));
  return (static_cast<double>(c) / k) *
         std::max(1.0, static_cast<double>(c) / n) * lg;
}

// Expected *actual* pairwise overlap of a generator, as opposed to the
// guaranteed minimum k. Theorem 4's running time is governed by the real
// overlap, so theory columns use this:
//   partitioned  exactly k by construction;
//   shared-core  k core channels plus incidental tail overlap
//                (c-k)^2 / (C-k) with C = 2c;
//   pigeonhole   hypergeometric mean c^2 / C with C = 2c-k.
inline double effective_overlap(const std::string& pattern, int c, int k) {
  if (pattern == "partitioned") return k;
  if (pattern == "shared-core" || pattern == "dynamic-shared-core") {
    const double tail = static_cast<double>(c - k);
    return k + tail * tail / (2.0 * c - k);
  }
  if (pattern == "pigeonhole" || pattern == "dynamic-pigeonhole")
    return static_cast<double>(c) * c / (2.0 * c - k);
  return k;
}

// Theorem 4 shape evaluated at the pattern's effective overlap.
inline double theorem4_shape_effective(const std::string& pattern, int n,
                                       int c, int k) {
  const double lg = std::log2(std::max(2.0, static_cast<double>(n)));
  return (static_cast<double>(c) / effective_overlap(pattern, c, k)) *
         std::max(1.0, static_cast<double>(c) / n) * lg;
}

// Prints a one-line power-law fit summary, e.g.
//   fit: median ~ 3.1 * c^1.02  (r2=0.998; theory exponent 1)
inline void print_fit(const std::string& xname, std::vector<double> xs,
                      std::vector<double> ys, double theory_exponent) {
  const PowerFit fit = fit_power(xs, ys);
  std::printf(
      "fit: median ~ %.3g * %s^%.2f  (r2=%.3f; theory exponent %.2f)\n",
      fit.coefficient, xname.c_str(), fit.exponent, fit.r2, theory_exponent);
}

}  // namespace cogradio::bench
