// E14 — Claim 2 robustness ablation: CogCast's bound is independent of the
// *pattern* of channel overlap.
//
// The analysis (Claims 1-3) shows the progress probability is Omega(k/c)
// whether the shared channels are concentrated (everyone shares the same k
// channels — "partitioned"), diffuse (random subsets — "pigeonhole"), or
// in between ("shared-core"). The measured medians across patterns at the
// same (n, c, k) should agree within a small constant factor.
#include <cstdio>

#include "bench_common.h"

using namespace cogradio;
using namespace cogradio::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = args.get_jobs();
  const int shards = args.get_shards();
  args.finish();
  BenchManifest manifest("e14_overlap_ablation", &args);

  std::printf("E14: overlap-pattern ablation   (Claim 2, %d trials/point)\n",
              trials);

  struct Config {
    int n, c, k;
  };
  for (const Config cfg : {Config{64, 16, 4}, Config{64, 16, 2},
                           Config{32, 8, 4}, Config{16, 32, 8}}) {
    // Normalizing each pattern's median by its *effective-overlap* theory
    // value isolates the constant the analysis hides; Claim 2 predicts
    // similar constants across concentrated vs diffuse overlap.
    Table table({"pattern", "k_eff", "median", "p95", "median/theory(k_eff)"});
    double lo = 1e18, hi = 0;
    for (const auto& pattern : static_pattern_names()) {
      const double theory =
          theorem4_shape_effective(pattern, cfg.n, cfg.c, cfg.k);
      const Summary s = cogcast_slots(pattern, cfg.n, cfg.c, cfg.k, trials,
                                      seed + static_cast<std::uint64_t>(cfg.n * 131 + cfg.c), jobs, 4.0, shards);
      const double normalized = safe_ratio(s.median, theory);
      lo = std::min(lo, normalized);
      hi = std::max(hi, normalized);
      manifest.add_summary("n" + std::to_string(cfg.n) + ".c" +
                               std::to_string(cfg.c) + ".k" +
                               std::to_string(cfg.k) + "." + pattern,
                           s);
      table.add_row({pattern,
                     Table::num(effective_overlap(pattern, cfg.c, cfg.k), 1),
                     Table::num(s.median, 1), Table::num(s.p95, 1),
                     Table::num(normalized, 3)});
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "n=%d c=%d k=%d   (max/min spread of normalized constants: %.2f)",
                  cfg.n, cfg.c, cfg.k, safe_ratio(hi, lo));
    table.print_with_title(title);
  }
  manifest.write();
  return 0;
}
