// Differential tests between the two slot-engine layouts (sim/network.h,
// EngineLayout): the structure-of-arrays hot path must be bit-identical to
// the per-node array-of-structs reference on every scenario family —
// identical ResolvedAction streams, TraceStats, and NodeActivity — because
// both consume the engine RNG in the documented draw order (DETERMINISM.md,
// "Engine layouts and the batched draw order").
//
// The families cover all three collision models, backoff emulation, fading,
// jamming, the full FaultEngine kind set, a dynamic assignment, and the
// sparse grouping fallback (channel universe too large for dense bitmaps).
// A separate suite pins the BatchClient interface against a per-node
// protocol twin generating the same traffic.
#include "sim/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/assignment.h"
#include "sim/fault_engine.h"
#include "sim/jamming.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace cogradio {
namespace {

// Everything observable from one run: the full resolved-action stream (one
// entry per node per slot, via the observer), final stats, and per-node
// activity counters.
struct RunTrace {
  std::vector<ResolvedAction> actions;
  TraceStats stats;
  std::vector<NodeActivity> activity;
};

struct Family {
  std::string name;
  CollisionModel collision = CollisionModel::OneWinner;
  bool backoff = false;
  double loss_prob = 0.0;
  bool jammed = false;
  bool faulted = false;
  bool dynamic = false;
};

// One fixed randomized run of a family under the given layout. All seeds
// are pinned, so for a fixed family the layout is the *only* difference
// between the two runs being compared.
RunTrace run_family(const Family& fam, EngineLayout layout) {
  const int n = 48, c = 8, k = 2;
  const Slot slots = 64;

  std::unique_ptr<ChannelAssignment> assignment;
  if (fam.dynamic) {
    assignment = std::make_unique<DynamicAssignment>(
        n, c, k, 2 * c,
        [&](Rng slot_rng) {
          return std::make_unique<SharedCoreAssignment>(
              n, c, k, LabelMode::LocalRandom, slot_rng);
        },
        Rng(101));
  } else {
    assignment = std::make_unique<SharedCoreAssignment>(
        n, c, k, LabelMode::LocalRandom, Rng(101));
  }

  Rng seeder(202);
  std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<RandomTrafficNode>(
        c, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }

  NetworkOptions opt;
  opt.layout = layout;
  opt.seed = 303;
  opt.collision = fam.collision;
  opt.emulate_backoff = fam.backoff;
  opt.loss_prob = fam.loss_prob;
  Network net(*assignment, std::move(protocols), opt);

  std::optional<RandomJammer> jammer;
  if (fam.jammed) {
    jammer.emplace(n, assignment->total_channels(), /*budget=*/2, Rng(404));
    net.set_jammer(&*jammer);
  }
  std::optional<FaultEngine> faults;
  if (fam.faulted) {
    faults.emplace(n, c, Rng(505));
    FaultProfile profile;
    profile.deaf = 3;
    profile.mute = 3;
    profile.babble = 3;
    profile.feedback_drop = 3;
    profile.churn = 2;
    profile.burst_nodes = 4;
    profile.burst_len = 6;
    faults->add_random(profile, slots);
    net.set_fault_engine(&*faults);
  }

  RunTrace out;
  net.set_observer([&](Slot, std::span<const ResolvedAction> actions) {
    out.actions.insert(out.actions.end(), actions.begin(), actions.end());
  });
  for (Slot s = 0; s < slots; ++s) net.step();
  out.stats = net.stats();
  for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
  return out;
}

void expect_identical(const RunTrace& soa, const RunTrace& aos) {
  EXPECT_EQ(soa.stats, aos.stats);
  EXPECT_EQ(soa.activity, aos.activity);
  ASSERT_EQ(soa.actions.size(), aos.actions.size());
  for (std::size_t i = 0; i < soa.actions.size(); ++i) {
    ASSERT_EQ(soa.actions[i], aos.actions[i]) << "action index " << i;
  }
}

class EngineLayoutDifferential : public ::testing::TestWithParam<Family> {};

TEST_P(EngineLayoutDifferential, SoAMatchesAoSBitForBit) {
  const Family& fam = GetParam();
  expect_identical(run_family(fam, EngineLayout::SoA),
                   run_family(fam, EngineLayout::AoS));
}

INSTANTIATE_TEST_SUITE_P(
    Families, EngineLayoutDifferential,
    ::testing::Values(
        Family{.name = "plain"},
        Family{.name = "backoff", .backoff = true},
        Family{.name = "fading", .loss_prob = 0.25},
        Family{.name = "jammed", .jammed = true},
        Family{.name = "faulted", .faulted = true},
        Family{.name = "all_delivered",
               .collision = CollisionModel::AllDelivered},
        Family{.name = "collision_loss",
               .collision = CollisionModel::CollisionLoss},
        Family{.name = "dynamic", .dynamic = true},
        Family{.name = "kitchen_sink",
               .loss_prob = 0.125,
               .jammed = true,
               .faulted = true}),
    [](const ::testing::TestParamInfo<Family>& info) {
      return info.param.name;
    });

// The sparse grouping fallback: a Partitioned universe with C = k + n(c-k)
// physical channels blows past the dense-bitmap affordability bound
// (ChannelBitmaps::affordable), so the SoA path must fall back to the
// counting-sort grouping — and still match the reference exactly.
TEST(EngineLayoutSparse, PartitionedUniverseMatchesAcrossLayouts) {
  const int n = 300, c = 16, k = 2;
  const Slot slots = 48;
  ASSERT_FALSE(ChannelBitmaps::affordable(k + n * (c - k), n));

  const auto run_once = [&](EngineLayout layout) {
    PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(7));
    Rng seeder(8);
    std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(
          c, seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.layout = layout;
    opt.seed = 9;
    opt.loss_prob = 0.125;
    Network net(assignment, std::move(protocols), opt);
    RunTrace out;
    net.set_observer([&](Slot, std::span<const ResolvedAction> actions) {
      out.actions.insert(out.actions.end(), actions.begin(), actions.end());
    });
    for (Slot s = 0; s < slots; ++s) net.step();
    out.stats = net.stats();
    for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
    return out;
  };

  expect_identical(run_once(EngineLayout::SoA), run_once(EngineLayout::AoS));
}

// --- Batch-client twin --------------------------------------------------

// Deterministic feedback-oblivious traffic shared by the per-node protocol
// and the batch client: a pure hash of (slot, node) decides mode, label,
// and payload, so both interfaces generate byte-identical offered load.
struct ChatterDecision {
  Mode mode = Mode::Idle;
  LocalLabel label = 0;
};

ChatterDecision chatter(Slot slot, NodeId node, int c) {
  std::uint64_t h = static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull +
                    static_cast<std::uint64_t>(node) * 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 32;
  ChatterDecision d;
  const std::uint64_t roll = h % 10;
  if (roll == 0) return d;  // idle
  d.mode = roll < 5 ? Mode::Broadcast : Mode::Listen;
  d.label = static_cast<LocalLabel>((h >> 8) % static_cast<std::uint64_t>(c));
  return d;
}

Message chatter_msg(Slot slot, NodeId node) {
  Message m;
  m.type = MessageType::Data;
  m.a = slot * 1000 + node;
  return m;
}

// What each traffic side accumulates from feedback; must agree exactly
// between the per-node and batch runs.
struct ChatterTally {
  std::int64_t tx_success = 0;
  std::int64_t jammed = 0;
  std::int64_t received = 0;
  std::int64_t received_payload_sum = 0;

  bool operator==(const ChatterTally&) const = default;
};

class ChatterNode : public Protocol {
 public:
  ChatterNode(NodeId id, int c, ChatterTally* tally)
      : id_(id), c_(c), tally_(tally) {}

  Action on_slot(Slot slot) override {
    const ChatterDecision d = chatter(slot, id_, c_);
    switch (d.mode) {
      case Mode::Broadcast:
        return Action::broadcast(d.label, chatter_msg(slot, id_));
      case Mode::Listen:
        return Action::listen(d.label);
      case Mode::Idle:
        break;
    }
    return Action::idle();
  }

  void on_feedback(Slot, const SlotResult& result) override {
    if (result.jammed) ++tally_->jammed;
    if (result.tx_success) ++tally_->tx_success;
    tally_->received += static_cast<std::int64_t>(result.received.size());
    for (const Message& m : result.received) tally_->received_payload_sum += m.a;
  }

  bool done() const override { return false; }

 private:
  NodeId id_;
  int c_;
  ChatterTally* tally_;
};

class ChatterClient : public BatchClient {
 public:
  ChatterClient(int n, int c, Slot slots, ChatterTally* tally)
      : n_(n), c_(c), slots_(slots), tally_(tally) {}

  void begin_slot(Slot slot, std::span<Mode> mode,
                  std::span<LocalLabel> label) override {
    for (NodeId u = 0; u < n_; ++u) {
      const ChatterDecision d = chatter(slot, u, c_);
      mode[static_cast<std::size_t>(u)] = d.mode;
      label[static_cast<std::size_t>(u)] = d.label;
    }
  }

  Message source_message(Slot slot, NodeId node) override {
    return chatter_msg(slot, node);
  }

  void end_slot(const BatchFeedback& fb) override {
    for (NodeId u = 0; u < n_; ++u) {
      const auto i = static_cast<std::size_t>(u);
      const std::uint8_t f = fb.flags[i];
      // A blanked node saw an empty SlotResult: ignore its other bits and
      // its rx view, exactly as the per-node path delivers it.
      if (f & slotflag::kFeedbackBlank) continue;
      if (f & slotflag::kJammed) ++tally_->jammed;
      if (f & slotflag::kTxSuccess) ++tally_->tx_success;
      const std::int32_t count = fb.rx_count[i];
      tally_->received += count;
      for (std::int32_t m = 0; m < count; ++m) {
        tally_->received_payload_sum +=
            fb.messages[static_cast<std::size_t>(fb.rx_offset[i] + m)].a;
      }
    }
    last_slot_ = fb.slot;
  }

  bool done() const override { return last_slot_ >= slots_; }

 private:
  int n_;
  int c_;
  Slot slots_;
  Slot last_slot_ = 0;
  ChatterTally* tally_;
};

// The batched-traffic interface must be a pure packaging change: a batch
// run and a per-node protocol run generating identical offered load see
// identical engine accounting and identical feedback content — with
// jamming, fading, and the full fault kind set active.
TEST(EngineLayoutBatch, BatchClientMatchesProtocolTwin) {
  const int n = 64, c = 8, k = 2;
  const Slot slots = 96;

  struct Run {
    TraceStats stats;
    std::vector<NodeActivity> activity;
    ChatterTally tally;
  };
  const auto finish = [&](Network& net, const ChatterTally& tally) {
    Run out;
    for (Slot s = 0; s < slots; ++s) net.step();
    out.stats = net.stats();
    for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
    out.tally = tally;
    return out;
  };
  const auto make_faults = [&](std::optional<FaultEngine>& faults,
                               Network& net) {
    faults.emplace(n, c, Rng(55));
    FaultProfile profile;
    profile.deaf = 4;
    profile.mute = 4;
    profile.babble = 4;
    profile.feedback_drop = 4;
    profile.churn = 3;
    profile.burst_nodes = 5;
    profile.burst_len = 8;
    faults->add_random(profile, slots);
    net.set_fault_engine(&*faults);
  };

  NetworkOptions opt;
  opt.layout = EngineLayout::SoA;
  opt.seed = 77;
  opt.loss_prob = 0.125;

  const auto run_protocol = [&](EngineLayout layout) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(33));
    ChatterTally tally;
    std::vector<std::unique_ptr<ChatterNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<ChatterNode>(u, c, &tally));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions o = opt;
    o.layout = layout;
    Network net(assignment, std::move(protocols), o);
    RandomJammer jammer(n, assignment.total_channels(), 2, Rng(44));
    net.set_jammer(&jammer);
    std::optional<FaultEngine> faults;
    make_faults(faults, net);
    return finish(net, tally);
  };
  const auto run_batch = [&] {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(33));
    ChatterTally tally;
    ChatterClient client(n, c, slots, &tally);
    Network net(assignment, client, opt);
    RandomJammer jammer(n, assignment.total_channels(), 2, Rng(44));
    net.set_jammer(&jammer);
    std::optional<FaultEngine> faults;
    make_faults(faults, net);
    return finish(net, tally);
  };

  const Run batch = run_batch();
  const Run soa = run_protocol(EngineLayout::SoA);
  const Run aos = run_protocol(EngineLayout::AoS);

  EXPECT_EQ(batch.stats, soa.stats);
  EXPECT_EQ(batch.stats, aos.stats);
  EXPECT_EQ(batch.activity, soa.activity);
  EXPECT_EQ(batch.activity, aos.activity);
  EXPECT_EQ(batch.tally, soa.tally);
  EXPECT_EQ(batch.tally, aos.tally);

  // The run did something: traffic flowed and adversaries actually bit.
  EXPECT_GT(batch.stats.deliveries, 0);
  EXPECT_GT(batch.stats.jammed_node_slots, 0);
  EXPECT_GT(batch.stats.feedback_drops, 0);
}

// The batch interface is a SoA feature: constructing one on the AoS
// reference layout must be rejected loudly.
TEST(EngineLayoutBatch, BatchClientRequiresSoALayout) {
  const int n = 4, c = 2;
  IdentityAssignment assignment(n, c, LabelMode::Global, Rng(1));
  ChatterTally tally;
  ChatterClient client(n, c, 1, &tally);
  NetworkOptions opt;
  opt.layout = EngineLayout::AoS;
  EXPECT_THROW(Network(assignment, client, opt), std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
