// Tests for the baseline protocols the paper compares against.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/det_rendezvous.h"
#include "baselines/hopping_together.h"
#include "baselines/rendezvous_aggregation.h"
#include "baselines/rendezvous_broadcast.h"
#include "core/runtime.h"
#include "sim/assignment.h"
#include "sim/network.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

// --- Rendezvous broadcast -----------------------------------------------------

struct RvBroadcastRun {
  bool completed = false;
  Slot slots = 0;
};

RvBroadcastRun run_rv_broadcast(ChannelAssignment& assignment, int n, int c,
                                std::uint64_t seed, Slot cap) {
  Rng seeder(seed);
  std::vector<std::unique_ptr<RendezvousBroadcastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<RendezvousBroadcastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  net.run(cap);
  RvBroadcastRun out;
  out.slots = net.now();
  out.completed = net.all_done();
  return out;
}

TEST(RendezvousBroadcast, InformsEveryone) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SharedCoreAssignment assignment(12, 6, 2, LabelMode::LocalRandom,
                                    Rng(seed));
    const auto out = run_rv_broadcast(assignment, 12, 6, seed, 100'000);
    EXPECT_TRUE(out.completed);
    EXPECT_GT(out.slots, 0);
  }
}

TEST(RendezvousBroadcast, SlowerThanCogCastOnAverage) {
  // The headline comparison (E4): over several trials the baseline's median
  // completion must exceed CogCast's on the same topologies.
  double base_total = 0, cog_total = 0;
  constexpr int kTrials = 12;
  const int n = 48, c = 12, k = 2;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    SharedCoreAssignment a1(n, c, k, LabelMode::LocalRandom, Rng(seed));
    base_total += static_cast<double>(
        run_rv_broadcast(a1, n, c, seed, 1'000'000).slots);
    SharedCoreAssignment a2(n, c, k, LabelMode::LocalRandom, Rng(seed));
    CogCastRunConfig config;
    config.params = {n, c, k};
    config.seed = seed;
    cog_total += static_cast<double>(run_cogcast(a2, config).slots);
  }
  EXPECT_GT(base_total, 2.0 * cog_total);
}

// --- Rendezvous aggregation ---------------------------------------------------

struct RvAggRun {
  bool completed = false;
  Slot slots = 0;
  Value result = 0;
};

RvAggRun run_rv_agg(ChannelAssignment& assignment, int n, int c,
                    const std::vector<Value>& values, AggOp op,
                    std::uint64_t seed, Slot cap) {
  Rng seeder(seed);
  std::vector<std::unique_ptr<RendezvousAggregationNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<RendezvousAggregationNode>(
        u, c, u == 0, values[static_cast<std::size_t>(u)], Aggregator(op),
        seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  nodes[0]->set_expected_count(n);
  Network net(assignment, protocols);
  net.run(cap);
  RvAggRun out;
  out.slots = net.now();
  out.completed = net.all_done();
  out.result = Aggregator(op).result(nodes[0]->accumulated());
  return out;
}

TEST(RendezvousAggregation, ComputesExactAggregate) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const int n = 10, c = 5, k = 2;
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    const auto values = make_values(n, seed, -100, 100);
    const auto out = run_rv_agg(assignment, n, c, values, AggOp::Sum, seed,
                                500'000);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.result, Aggregator(AggOp::Sum).expected(values));
  }
}

TEST(RendezvousAggregation, NoDuplicateDeliveries) {
  const int n = 14, c = 6, k = 3;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(9));
  const auto values = make_values(n, 9, 1, 1);  // all ones: result == count
  const auto out = run_rv_agg(assignment, n, c, values, AggOp::Sum, 9,
                              500'000);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.result, n);
}

// --- Hopping together ---------------------------------------------------------

struct HoppingRun {
  bool completed = false;
  Slot slots = 0;
};

HoppingRun run_hopping(ChannelAssignment& assignment, int n,
                       Slot cap) {
  std::vector<std::unique_ptr<HoppingTogetherNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    std::vector<Channel> globals;
    for (LocalLabel l = 0; l < assignment.channels_per_node(); ++l)
      globals.push_back(assignment.global_channel(u, l));
    nodes.push_back(std::make_unique<HoppingTogetherNode>(
        u, assignment.total_channels(), u == 0, data_msg(), std::move(globals)));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  net.run(cap);
  HoppingRun out;
  out.slots = net.now();
  out.completed = net.all_done();
  return out;
}

TEST(HoppingTogether, CompletesInOneScanOnTheorem16Setup) {
  // Partitioned setup: the scan must hit one of the k shared channels within
  // C slots, and on that slot everyone is informed at once.
  const int n = 8, c = 6, k = 2;
  PartitionedAssignment assignment(n, c, k, LabelMode::Global, Rng(4));
  const auto out = run_hopping(assignment, n, assignment.total_channels() + 1);
  EXPECT_TRUE(out.completed);
  EXPECT_LE(out.slots, assignment.total_channels());
}

TEST(HoppingTogether, PhysicalBehaviorInvariantUnderPermutedGlobals) {
  // Regression for the label_of_ map: lookups go through a channel-sorted
  // vector, so the node's *physical* behavior (which slots it sits out,
  // which physical channel it tunes) must depend only on the channel *set*,
  // not on the construction order of `globals`. Under a permutation the
  // reported local label differs, but globals[label] must agree slot by
  // slot.
  const int C = 12;
  const std::vector<Channel> fwd = {3, 7, 1, 9};
  std::vector<Channel> rev(fwd.rbegin(), fwd.rend());
  std::vector<Channel> rot = {9, 3, 7, 1};
  HoppingTogetherNode a(0, C, true, data_msg(), fwd);
  HoppingTogetherNode b(0, C, true, data_msg(), rev);
  HoppingTogetherNode c(0, C, true, data_msg(), rot);
  for (Slot t = 1; t <= 2 * C; ++t) {
    const Action aa = a.on_slot(t);
    const Action ab = b.on_slot(t);
    const Action ac = c.on_slot(t);
    EXPECT_EQ(ab.mode, aa.mode) << "slot " << t;
    EXPECT_EQ(ac.mode, aa.mode) << "slot " << t;
    if (aa.mode == Mode::Idle) continue;
    const Channel tuned = fwd[static_cast<std::size_t>(aa.channel)];
    EXPECT_EQ(rev[static_cast<std::size_t>(ab.channel)], tuned) << "slot " << t;
    EXPECT_EQ(rot[static_cast<std::size_t>(ac.channel)], tuned) << "slot " << t;
    EXPECT_EQ(tuned, static_cast<Channel>((t - 1) % C));
  }
}

TEST(HoppingTogether, DuplicateChannelKeepsLowestLabel) {
  // If the same physical channel appears under two labels, the sorted-vector
  // lookup must keep resolving to the lowest label (the behavior of the
  // original first-insert-wins map).
  const int C = 5;
  const std::vector<Channel> globals = {2, 4, 2, 0};
  HoppingTogetherNode node(0, C, true, data_msg(), globals);
  const Action act = node.on_slot(3);  // scan channel (3-1) % 5 = 2
  ASSERT_EQ(act.mode, Mode::Broadcast);
  EXPECT_EQ(act.channel, 0);  // label 0, not label 2
}

TEST(HoppingTogether, PaperExampleIsConstantTime) {
  // The Section 6 example: c = n^2, k = c - 1. With most channels shared,
  // the scan hits a shared channel almost immediately.
  const int n = 4, c = 16, k = 15;
  PartitionedAssignment assignment(n, c, k, LabelMode::Global, Rng(5));
  const auto out = run_hopping(assignment, n, 1000);
  ASSERT_TRUE(out.completed);
  // C = k + n(c-k) = 15 + 4 = 19 channels, 15 shared: expected hit ~ C/k.
  EXPECT_LE(out.slots, 6);
}

// --- Deterministic rendezvous ---------------------------------------------------

TEST(DetRendezvous, PairMeetsWithinTheBlockBound) {
  // Two nodes with overlapping sets and distinct ids must exchange the
  // message within id_bits * c^2 slots, for any label permutations.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int c = 5, k = 2;
    SharedCoreAssignment assignment(2, c, k, LabelMode::LocalRandom, Rng(seed));
    DetRendezvousNode holder(0, c, true, data_msg());
    DetRendezvousNode seeker(1, c, false, data_msg());
    Network net(assignment, {&holder, &seeker});
    const Slot bound = 20LL * c * c;
    net.run(bound);
    EXPECT_TRUE(seeker.informed()) << "seed " << seed;
    EXPECT_LE(seeker.informed_slot(), bound);
  }
}

TEST(DetRendezvous, IsDeterministic) {
  const int c = 4;
  SharedCoreAssignment a1(2, c, 2, LabelMode::LocalRandom, Rng(3));
  SharedCoreAssignment a2(2, c, 2, LabelMode::LocalRandom, Rng(3));
  Slot first = 0, second = 0;
  {
    DetRendezvousNode holder(0, c, true, data_msg());
    DetRendezvousNode seeker(1, c, false, data_msg());
    Network net(a1, {&holder, &seeker});
    net.run(10'000);
    first = seeker.informed_slot();
  }
  {
    DetRendezvousNode holder(0, c, true, data_msg());
    DetRendezvousNode seeker(1, c, false, data_msg());
    Network net(a2, {&holder, &seeker});
    net.run(10'000);
    second = seeker.informed_slot();
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace cogradio
