// Tests for the TDMA tournament aggregation baseline.
#include "baselines/tdma_aggregation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/runtime.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

TEST(TdmaSchedule, SlotCountIsNOverKPlusLogRounds) {
  // n-1 merges total, k per slot, but each round's remainder wastes at
  // most one slot: total <= (n-1)/k + ceil(lg n).
  for (int n : {2, 5, 8, 16, 33, 100}) {
    for (int k : {1, 2, 4, 8}) {
      const TdmaSchedule schedule(n, k, 0);
      const double bound = static_cast<double>(n - 1) / k +
                           std::ceil(std::log2(static_cast<double>(n))) + 1;
      EXPECT_LE(schedule.total_slots(), static_cast<Slot>(bound))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(TdmaSchedule, EveryNonSourceNodeSendsExactlyOnce) {
  const int n = 13, k = 3;
  const TdmaSchedule schedule(n, k, 4);
  std::set<NodeId> senders;
  for (Slot t = 1; t <= schedule.total_slots(); ++t) {
    for (const auto& m : schedule.merges_in(t)) {
      EXPECT_TRUE(senders.insert(m.sender).second)
          << "node " << m.sender << " sends twice";
      EXPECT_NE(m.sender, 4) << "source must never send";
      EXPECT_GE(m.channel_index, 0);
      EXPECT_LT(m.channel_index, k);
    }
  }
  EXPECT_EQ(senders.size(), static_cast<std::size_t>(n - 1));
}

TEST(TdmaSchedule, NoChannelReusedWithinASlot) {
  const TdmaSchedule schedule(20, 4, 0);
  for (Slot t = 1; t <= schedule.total_slots(); ++t) {
    std::set<int> channels;
    for (const auto& m : schedule.merges_in(t))
      EXPECT_TRUE(channels.insert(m.channel_index).second);
  }
}

TEST(TdmaSchedule, MergeForFindsBothEndpoints) {
  const TdmaSchedule schedule(6, 2, 0);
  const auto& first = schedule.merges_in(1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(schedule.merge_for(1, first[0].sender), &first[0]);
  EXPECT_EQ(schedule.merge_for(1, first[0].receiver), &first[0]);
  EXPECT_EQ(schedule.merge_for(0, 0), nullptr);
}

TEST(TdmaAggregation, ExactOnPartitionedTopology) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 20, c = 6, k = 2;
    PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                     Rng(seed));
    const auto values = make_values(n, seed, -500, 500);
    const auto out = run_tdma_aggregation(assignment, values, AggOp::Sum);
    ASSERT_TRUE(out.completed) << "seed " << seed;
    EXPECT_EQ(out.result, out.expected);
  }
}

TEST(TdmaAggregation, ExactOnIdentityTopologyAllOps) {
  const int n = 12, c = 4;
  for (AggOp op : {AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Count}) {
    IdentityAssignment assignment(n, c, LabelMode::LocalRandom, Rng(3));
    const auto values = make_values(n, 9, -50, 50);
    const auto out = run_tdma_aggregation(assignment, values, op);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.result, out.expected) << to_string(op);
  }
}

TEST(TdmaAggregation, NonZeroSource) {
  const int n = 10, c = 5, k = 2;
  PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(4));
  const auto values = make_values(n, 5);
  const auto out = run_tdma_aggregation(assignment, values, AggOp::Sum, 7);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.result, out.expected);
}

TEST(TdmaAggregation, AchievesTheLowerBoundShape) {
  // Slots should scale ~ n/k: quadrupling k at fixed n cuts slots ~4x
  // (up to the lg n additive term).
  const int n = 64, c = 12;
  auto slots_for = [&](int k) {
    PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(6));
    const auto values = make_values(n, 7);
    return static_cast<double>(
        run_tdma_aggregation(assignment, values, AggOp::Sum).slots);
  };
  const double s1 = slots_for(1);
  const double s4 = slots_for(4);
  EXPECT_GT(s1, 2.5 * s4 - 10);
  EXPECT_GE(s1 + 1, static_cast<double>(n) / 1);  // >= n/k = 64 for k=1
}

TEST(TdmaAggregation, RequiresSharedChannels) {
  // Pigeonhole sets need not share a common channel across all nodes.
  PigeonholeAssignment assignment(30, 6, 1, LabelMode::Global, Rng(8));
  const auto values = make_values(30, 9);
  // Either the intersection is empty (throws) or it happens to exist and
  // the run must then be exact.
  try {
    const auto out = run_tdma_aggregation(assignment, values, AggOp::Sum);
    EXPECT_EQ(out.result, out.expected);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(TdmaAggregation, SingleNode) {
  IdentityAssignment assignment(1, 3, LabelMode::Global, Rng(1));
  const std::vector<Value> values{11};
  const auto out = run_tdma_aggregation(assignment, values, AggOp::Sum);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.result, 11);
  EXPECT_EQ(out.slots, 0);
}

}  // namespace
}  // namespace cogradio
