// Tests for the `cograd serve` subsystem (src/serve): wire-protocol
// round-trips and malformed-frame rejection, run_job's determinism and
// byte-identity contract, and the live daemon — lifecycle, submit/done,
// concurrent multi-client identity, disconnect survival, queue shedding,
// cancel, and shutdown. Suites are named Serve* so the TSan CI leg's
// regex picks every one of them up.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace cogradio {
namespace {

// --- Protocol ---------------------------------------------------------------

TEST(ServeProtocol, RequestFramesRoundTrip) {
  Request submit;
  submit.type = RequestType::Submit;
  submit.id = 7;
  submit.job.kind = JobKind::CogComp;
  submit.job.n = 48;
  submit.job.c = 12;
  submit.job.k = 3;
  submit.job.pattern = "partitioned";
  submit.job.seed = 18446744073709551615ull;  // uint64 max must survive
  submit.job.shards = 2;
  submit.job.op = AggOp::Min;
  submit.job.mediated = false;
  submit.job.deadline = 999;
  submit.job.max_deadline = 123456;

  const std::string frame = encode_request(submit);
  ASSERT_EQ(frame.back(), '\n');
  std::string error;
  const auto parsed = parse_request(frame.substr(0, frame.size() - 1), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->type, RequestType::Submit);
  EXPECT_EQ(parsed->id, 7);
  EXPECT_EQ(parsed->job.kind, JobKind::CogComp);
  EXPECT_EQ(parsed->job.n, 48);
  EXPECT_EQ(parsed->job.seed, 18446744073709551615ull);
  EXPECT_EQ(parsed->job.op, AggOp::Min);
  EXPECT_FALSE(parsed->job.mediated);
  EXPECT_EQ(parsed->job.deadline, 999);
  EXPECT_EQ(parsed->job.max_deadline, 123456);
  // Re-encoding the parse reproduces the frame byte for byte.
  EXPECT_EQ(encode_request(*parsed), frame);

  for (const RequestType type :
       {RequestType::Cancel, RequestType::Status, RequestType::Stats,
        RequestType::Ping, RequestType::Shutdown}) {
    Request request;
    request.type = type;
    request.id = 3;
    const std::string encoded = encode_request(request);
    const auto again =
        parse_request(encoded.substr(0, encoded.size() - 1), &error);
    ASSERT_TRUE(again.has_value()) << encoded;
    EXPECT_EQ(again->type, type);
  }
}

TEST(ServeProtocol, MalformedFramesAreRejectedNotFatal) {
  const char* bad[] = {
      "",                                    // empty line
      "not json at all",                     // parse failure
      "42",                                  // not an object
      "{}",                                  // missing type
      "{\"type\":12}",                       // type not a string
      "{\"type\":\"warp\"}",                 // unknown type
      "{\"type\":\"submit\"}",               // missing id
      "{\"type\":\"submit\",\"id\":-1}",     // negative id
      "{\"type\":\"submit\",\"id\":1}",      // missing job
      "{\"type\":\"submit\",\"id\":1,\"job\":{\"bogus\":1}}",  // unknown key
      "{\"type\":\"submit\",\"id\":1,\"job\":{\"n\":1}}",      // n too small
      "{\"type\":\"submit\",\"id\":1,\"job\":{\"k\":9,\"c\":4}}",  // k > c
      "{\"type\":\"submit\",\"id\":1,\"job\":{\"seed\":-3}}",  // bad seed
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(parse_request(line, &error).has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  // Depth-bombed job payloads die in the JSON parser's depth cap.
  std::string deep = "{\"type\":\"submit\",\"id\":1,\"job\":";
  for (int i = 0; i < 200; ++i) deep += "{\"n\":";
  std::string error;
  EXPECT_FALSE(parse_request(deep, &error).has_value());
  // And a frame at the size cap is rejected before parsing.
  EXPECT_FALSE(
      parse_request(std::string(kMaxFrameBytes, ' '), &error).has_value());
}

TEST(ServeProtocol, SeedSurvivesTheWireExactly) {
  // Regression guard for the double-precision trap: a raw JSON number
  // cannot carry a full uint64, so seeds ride as decimal strings.
  JobSpec spec;
  spec.seed = 0xDEADBEEFCAFEF00Dull;
  std::string error;
  const auto doc = parse_json(job_spec_to_json(spec), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto parsed = parse_job_spec(*doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->seed, 0xDEADBEEFCAFEF00Dull);
}

// --- run_job ----------------------------------------------------------------

TEST(ServeJob, ResultsAreDeterministicAndVerified) {
  JobSpec spec;
  spec.n = 24;
  spec.c = 6;
  spec.k = 2;
  spec.seed = 42;
  const JobResult a = run_job(spec);
  const JobResult b = run_job(spec);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(a.verified);
  EXPECT_EQ(job_result_to_json(a), job_result_to_json(b));

  spec.kind = JobKind::CogComp;
  spec.op = AggOp::Sum;
  const JobResult comp = run_job(spec);
  EXPECT_TRUE(comp.ok);
  EXPECT_TRUE(comp.completed);
  EXPECT_TRUE(comp.verified) << "source aggregate " << comp.result
                             << " != expected " << comp.expected;
  EXPECT_EQ(comp.result, comp.expected);
  EXPECT_EQ(job_result_to_json(comp), job_result_to_json(run_job(spec)));
}

TEST(ServeJob, UnrunnableSpecFailsCleanly) {
  JobSpec spec;
  spec.pattern = "no-such-pattern";
  const JobResult result = run_job(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  EXPECT_FALSE(result.completed);
}

TEST(ServeJob, ObserverAbortSurfacesAsAborted) {
  JobSpec spec;
  spec.n = 24;
  spec.c = 6;
  spec.k = 2;
  spec.seed = 7;
  spec.deadline = 2;        // too short to finish: forces restarts
  spec.max_restarts = 50;
  const JobResult result =
      run_job(spec, [](int attempt, const EpochStats&) {
        return attempt < 1;  // give up after the second epoch
      });
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.epochs, 2);
}

// --- Live daemon ------------------------------------------------------------

// A blocking test client over one connection.
class Client {
 public:
  explicit Client(int port) : fd_(connect_tcp(port, &error_)) {}
  explicit Client(const std::string& path)
      : fd_(connect_unix(path, &error_)) {}

  bool ok() const { return fd_.valid(); }
  const std::string& error() const { return error_; }

  bool send_line(const std::string& frame) {
    return send_all(fd_.get(), frame);
  }

  // Next response frame, or nullopt on EOF.
  std::optional<Response> next() {
    if (!reader_) reader_.emplace(fd_.get(), kMaxFrameBytes);
    const auto line = reader_->next_line();
    if (!line) return std::nullopt;
    std::string error;
    auto response = parse_response(*line, &error);
    EXPECT_TRUE(response.has_value()) << *line << " : " << error;
    last_line_ = *line;
    return response;
  }

  // Waits for the next terminal frame (done/shed/error); returns its raw
  // line.
  std::string run_to_done(std::int64_t /*id*/) {
    while (true) {
      const auto response = next();
      if (!response) return "";
      if (response->type == "done") return last_line_;
      if (response->type == "shed" || response->type == "error")
        return last_line_;
    }
  }

  void close() { fd_ = OwnedFd(); }

 private:
  std::string error_;
  OwnedFd fd_;
  std::optional<LineReader> reader_;
  std::string last_line_;
};

struct DaemonFixture {
  explicit DaemonFixture(ServeOptions options = {}) {
    if (options.unix_path.empty() && options.tcp_port < 0)
      options.tcp_port = 0;  // ephemeral
    server = std::make_unique<ServeServer>(options);
    port = server->tcp_port();
    // cograd-lint: allow(R8) test fixture hosts the daemon's IO loop off the gtest thread
    io = std::thread([this] { server->run(); });
  }
  ~DaemonFixture() {
    server->stop();
    io.join();
  }
  std::unique_ptr<ServeServer> server;
  int port = -1;
  std::thread io;
};

Request make_submit(std::int64_t id, std::uint64_t seed, int n = 24) {
  Request request;
  request.type = RequestType::Submit;
  request.id = id;
  request.job.n = n;
  request.job.c = 6;
  request.job.k = 2;
  request.job.seed = seed;
  return request;
}

TEST(ServeDaemon, PingSubmitDoneAndByteIdentity) {
  DaemonFixture daemon;
  Client client(daemon.port);
  ASSERT_TRUE(client.ok()) << client.error();

  ASSERT_TRUE(client.send_line("{\"type\":\"ping\"}\n"));
  auto pong = client.next();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, "pong");

  const Request submit = make_submit(5, 99);
  ASSERT_TRUE(client.send_line(encode_request(submit)));
  auto accepted = client.next();
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->type, "accepted");

  const std::string done_line = client.run_to_done(5);
  // THE contract: the daemon's done frame equals a local run, byte for
  // byte.
  EXPECT_EQ(done_line + "\n", frame_done(5, run_job(submit.job)));
}

TEST(ServeDaemon, ManyConcurrentClientsEachGetTheirOwnBytes) {
  DaemonFixture daemon;
  constexpr int kClients = 8;
  constexpr int kJobsEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    // cograd-lint: allow(R8) concurrency test spawns real client threads to race the daemon
    clients.emplace_back([&, i] {
      Client client(daemon.port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int j = 0; j < kJobsEach; ++j) {
        const Request submit =
            make_submit(j, static_cast<std::uint64_t>(1000 + i * 17 + j));
        if (!client.send_line(encode_request(submit))) {
          ++failures;
          return;
        }
        const std::string done = client.run_to_done(j);
        if (done + "\n" != frame_done(j, run_job(submit.job))) ++failures;
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServeStats stats = daemon.server->stats();
  EXPECT_EQ(stats.accepted, kClients * kJobsEach);
  EXPECT_EQ(stats.completed, kClients * kJobsEach);
}

TEST(ServeDaemon, SurvivesAbruptDisconnects) {
  DaemonFixture daemon;
  // A wave of clients that submit and vanish without reading anything.
  for (int i = 0; i < 10; ++i) {
    Client rude(daemon.port);
    ASSERT_TRUE(rude.ok());
    rude.send_line(encode_request(make_submit(0, 7 + i, 32)));
    rude.close();  // gone before accepted/epoch/done could be written
  }
  // The daemon must still serve a polite client correctly.
  Client polite(daemon.port);
  ASSERT_TRUE(polite.ok()) << polite.error();
  const Request submit = make_submit(1, 4242);
  ASSERT_TRUE(polite.send_line(encode_request(submit)));
  const std::string done = polite.run_to_done(1);
  EXPECT_EQ(done + "\n", frame_done(1, run_job(submit.job)));
  // Every accepted job is accounted for exactly once, shed or finished.
  const ServeStats stats = daemon.server->stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.shed_disconnect +
                                stats.aborted + stats.failed);
}

TEST(ServeDaemon, ShedsWhenTheQueueIsFull) {
  ServeOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  options.max_queue = 1;
  DaemonFixture daemon(options);
  Client client(daemon.port);
  ASSERT_TRUE(client.ok());
  // Flood without reading; with one worker and a one-deep queue some of
  // these must come back shed.
  std::string burst;
  for (int i = 0; i < 12; ++i)
    burst += encode_request(make_submit(i, 50 + i, 32));
  ASSERT_TRUE(client.send_line(burst));
  int done = 0, shed = 0;
  for (int i = 0; i < 12; ++i) {
    const std::string line = client.run_to_done(i);
    ASSERT_FALSE(line.empty());
    if (line.find("\"type\":\"done\"") != std::string::npos) ++done;
    if (line.find("\"type\":\"shed\"") != std::string::npos) ++shed;
  }
  EXPECT_EQ(done + shed, 12);
  EXPECT_GT(shed, 0);
  const ServeStats stats = daemon.server->stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.accepted, done);
}

TEST(ServeDaemon, MalformedFramesEarnErrorsThenHangup) {
  DaemonFixture daemon;
  Client client(daemon.port);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < kMaxProtocolStrikes; ++i)
    ASSERT_TRUE(client.send_line("this is not json\n"));
  int errors = 0;
  while (true) {
    const auto response = client.next();
    if (!response) break;  // daemon hung up after the strike limit
    EXPECT_EQ(response->type, "error");
    ++errors;
  }
  EXPECT_EQ(errors, kMaxProtocolStrikes);
  // The daemon is still alive for a well-behaved client.
  Client fine(daemon.port);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(fine.send_line("{\"type\":\"ping\"}\n"));
  const auto pong = fine.next();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, "pong");
}

TEST(ServeDaemon, CancelAbortsAQueuedJob) {
  ServeOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  DaemonFixture daemon(options);
  Client client(daemon.port);
  ASSERT_TRUE(client.ok());
  // Job 0 occupies the single worker; job 1 waits in the queue and is
  // cancelled before it can start.
  ASSERT_TRUE(client.send_line(encode_request(make_submit(0, 3, 48)) +
                               encode_request(make_submit(1, 4, 48)) +
                               "{\"type\":\"cancel\",\"id\":1}\n"));
  bool job1_aborted = false;
  int finished = 0;
  while (finished < 2) {
    const auto response = client.next();
    ASSERT_TRUE(response.has_value());
    if (response->type != "done") continue;
    ++finished;
    const JsonValue* id = response->body.find("id");
    const JsonValue* result = response->body.find("result");
    ASSERT_NE(id, nullptr);
    ASSERT_NE(result, nullptr);
    if (static_cast<int>(id->as_number()) == 1) {
      const JsonValue* aborted = result->find("aborted");
      ASSERT_NE(aborted, nullptr);
      job1_aborted = aborted->as_bool();
    }
  }
  EXPECT_TRUE(job1_aborted);
}

TEST(ServeDaemon, ShutdownFrameStopsTheServer) {
  ServeOptions options;
  options.tcp_port = 0;
  ServeServer server(options);
  const int port = server.tcp_port();
  // cograd-lint: allow(R8) shutdown test needs a bare IO thread it can watch exit on its own
  std::thread io([&server] { server.run(); });
  Client client(port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send_line("{\"type\":\"shutdown\"}\n"));
  const auto bye = client.next();
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->type, "bye");
  io.join();  // run() must return on its own — no stop() needed
}

TEST(ServeDaemon, UnixSocketWorksEndToEnd) {
  const std::string path =
      "test-serve-" + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  options.unix_path = path;
  DaemonFixture daemon(options);
  Client client(path);
  ASSERT_TRUE(client.ok()) << client.error();
  const Request submit = make_submit(9, 123);
  ASSERT_TRUE(client.send_line(encode_request(submit)));
  const std::string done = client.run_to_done(9);
  EXPECT_EQ(done + "\n", frame_done(9, run_job(submit.job)));
}

// --- Loadgen-vs-daemon integration ------------------------------------------

TEST(ServeLoadgen, CleanAndChurnRunsStayAccounted) {
  ServeOptions options;
  options.tcp_port = 0;
  options.workers = 2;
  DaemonFixture daemon(options);

  LoadgenOptions load;
  load.tcp_port = daemon.port;
  load.sessions = 16;
  load.connections = 4;
  load.job.n = 24;
  load.job.c = 6;
  load.job.k = 2;
  const LoadgenReport clean = run_loadgen(load);
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.completed, 16);
  EXPECT_EQ(clean.verify_failures, 0);

  load.kill_every = 3;
  load.seed = 2;
  const LoadgenReport churn = run_loadgen(load);
  EXPECT_TRUE(churn.ok);
  EXPECT_GT(churn.killed, 0);
  const ServeStats stats = daemon.server->stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.shed_disconnect +
                                stats.aborted + stats.failed);
  EXPECT_EQ(stats.failed, 0);
}

}  // namespace
}  // namespace cogradio
