// Tests for the multi-hop engine and the lifted epidemic broadcast.
#include "core/multihop_cast.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "sim/assignment.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

// Scripted protocol for engine-semantics tests.
class Fixed : public Protocol {
 public:
  Fixed(Mode mode, LocalLabel label) : mode_(mode), label_(label) {}
  Action on_slot(Slot) override {
    if (mode_ == Mode::Broadcast) return Action::broadcast(label_, data_msg());
    if (mode_ == Mode::Listen) return Action::listen(label_);
    return Action::idle();
  }
  void on_feedback(Slot, const SlotResult& r) override {
    heard = !r.received.empty();
    sender = heard ? r.received.front().sender : kNoNode;
  }
  bool done() const override { return true; }
  Mode mode_;
  LocalLabel label_;
  bool heard = false;
  NodeId sender = kNoNode;
};

TEST(MultihopEngine, OnlyNeighborsHear) {
  // Line 0-1-2: node 0 broadcasts; 1 hears, 2 does not.
  IdentityAssignment assignment(3, 1, LabelMode::Global, Rng(1));
  const Topology topo = Topology::line(3);
  Fixed talker(Mode::Broadcast, 0), near(Mode::Listen, 0), far(Mode::Listen, 0);
  MultihopNetwork net(assignment, topo, {&talker, &near, &far});
  net.step();
  EXPECT_TRUE(near.heard);
  EXPECT_EQ(near.sender, 0);
  EXPECT_FALSE(far.heard);
}

TEST(MultihopEngine, TwoBroadcastingNeighborsCollideAtReceiver) {
  // Line 0-1-2: nodes 0 and 2 broadcast on the same channel; 1 hears
  // nothing (receiver-side collision).
  IdentityAssignment assignment(3, 1, LabelMode::Global, Rng(2));
  const Topology topo = Topology::line(3);
  Fixed left(Mode::Broadcast, 0), mid(Mode::Listen, 0),
      right(Mode::Broadcast, 0);
  MultihopNetwork net(assignment, topo, {&left, &mid, &right});
  net.step();
  EXPECT_FALSE(mid.heard);
  EXPECT_EQ(net.stats().collision_events, 1);
}

TEST(MultihopEngine, DifferentChannelsDoNotCollide) {
  // Nodes 0 and 2 broadcast on different channels; 1 listens on channel 1
  // and hears node 2 only.
  IdentityAssignment assignment(3, 2, LabelMode::Global, Rng(3));
  const Topology topo = Topology::line(3);
  Fixed left(Mode::Broadcast, 0), mid(Mode::Listen, 1),
      right(Mode::Broadcast, 1);
  MultihopNetwork net(assignment, topo, {&left, &mid, &right});
  net.step();
  EXPECT_TRUE(mid.heard);
  EXPECT_EQ(mid.sender, 2);
}

TEST(MultihopEngine, BroadcasterDoesNotHearItself) {
  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(4));
  const Topology topo = Topology::clique(2);
  Fixed a(Mode::Broadcast, 0), b(Mode::Broadcast, 0);
  MultihopNetwork net(assignment, topo, {&a, &b});
  net.step();
  EXPECT_FALSE(a.heard);
  EXPECT_FALSE(b.heard);
}

TEST(MultihopEngine, ActivityAccounting) {
  IdentityAssignment assignment(3, 1, LabelMode::Global, Rng(5));
  const Topology topo = Topology::line(3);
  Fixed talker(Mode::Broadcast, 0), listener(Mode::Listen, 0),
      idler(Mode::Idle, 0);
  MultihopNetwork net(assignment, topo, {&talker, &listener, &idler});
  for (int i = 0; i < 4; ++i) net.step();
  EXPECT_EQ(net.activity(0).tx, 4);
  EXPECT_EQ(net.activity(1).listen, 4);
  EXPECT_EQ(net.activity(1).received, 4);
  EXPECT_EQ(net.activity(2).idle, 4);
}

TEST(MultihopEngine, RejectsSizeMismatch) {
  IdentityAssignment assignment(3, 1, LabelMode::Global, Rng(6));
  const Topology topo = Topology::line(2);
  Fixed a(Mode::Idle, 0), b(Mode::Idle, 0), c(Mode::Idle, 0);
  EXPECT_THROW(MultihopNetwork(assignment, topo, {&a, &b, &c}),
               std::invalid_argument);
}

// --- Lifted epidemic broadcast -----------------------------------------------

using Param = std::tuple<std::string, int, int, int>;  // topo, n, c, k

class MultihopCastSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MultihopCastSweep, InformsEveryReachableNode) {
  const auto& [shape, n, c, k] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Topology topo = shape == "line"   ? Topology::line(n)
                    : shape == "ring" ? Topology::ring(n)
                    : shape == "grid"
                        ? Topology::grid(n / 4, 4)
                        : Topology::random_geometric(n, 0.45, Rng(seed));
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                    Rng(seed * 7));
    MultihopCastConfig config;
    config.seed = seed * 13 + 1;
    const MultihopOutcome out =
        run_multihop_cast(assignment, topo, config);
    ASSERT_TRUE(out.completed)
        << shape << " n=" << n << " seed=" << seed;
    // Parents must be graph neighbors and informed earlier — a valid
    // broadcast forest rooted at the source.
    for (NodeId u = 1; u < n; ++u) {
      const NodeId pa = out.parent[static_cast<std::size_t>(u)];
      ASSERT_NE(pa, kNoNode);
      EXPECT_TRUE(topo.are_neighbors(u, pa));
      EXPECT_LT(out.informed_slot[static_cast<std::size_t>(pa)],
                out.informed_slot[static_cast<std::size_t>(u)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultihopCastSweep,
    ::testing::Values(Param{"line", 12, 6, 2}, Param{"ring", 16, 6, 2},
                      Param{"grid", 16, 8, 3}, Param{"geometric", 20, 6, 2}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MultihopCast, InformedSlotsRespectHopDepth) {
  // On a line, node i can only be informed after >= i slots.
  const int n = 10, c = 4, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(9));
  const Topology topo = Topology::line(n);
  MultihopCastConfig config;
  config.seed = 10;
  const auto out = run_multihop_cast(assignment, topo, config);
  ASSERT_TRUE(out.completed);
  const auto depth = topo.hop_depths(0);
  for (NodeId u = 1; u < n; ++u)
    EXPECT_GE(out.informed_slot[static_cast<std::size_t>(u)],
              static_cast<Slot>(depth[static_cast<std::size_t>(u)]));
}

TEST(MultihopCast, SuggestedDecayLevelsScale) {
  EXPECT_EQ(MultihopCastNode::suggested_decay_levels(1), 2);
  EXPECT_GE(MultihopCastNode::suggested_decay_levels(64), 7);
}

// Fuzz: random actions, externally recomputed reception oracle.
class MultihopFuzzNode : public Protocol {
 public:
  MultihopFuzzNode(int c, Rng rng) : c_(c), rng_(rng) {}
  Action on_slot(Slot) override {
    const auto roll = rng_.below(8);
    last_mode_ = Mode::Idle;
    if (roll == 0) return Action::idle();
    last_label_ = static_cast<LocalLabel>(rng_.below(static_cast<std::uint64_t>(c_)));
    if (roll <= 3) {
      last_mode_ = Mode::Broadcast;
      Message m;
      m.type = MessageType::Data;
      return Action::broadcast(last_label_, m);
    }
    last_mode_ = Mode::Listen;
    return Action::listen(last_label_);
  }
  void on_feedback(Slot, const SlotResult& r) override {
    heard_ = !r.received.empty();
    sender_ = heard_ ? r.received.front().sender : kNoNode;
  }
  bool done() const override { return false; }

  Mode last_mode_ = Mode::Idle;
  LocalLabel last_label_ = 0;
  bool heard_ = false;
  NodeId sender_ = kNoNode;

 private:
  int c_;
  Rng rng_;
};

TEST(MultihopFuzz, ReceptionMatchesNeighborOracle) {
  const int n = 18, c = 4, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  const Topology topo = Topology::random_geometric(n, 0.4, Rng(4));
  Rng seeder(5);
  std::vector<std::unique_ptr<MultihopFuzzNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<MultihopFuzzNode>(
        c, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  MultihopNetwork net(assignment, topo, protocols);

  for (int s = 0; s < 300; ++s) {
    net.step();
    // Oracle: recompute every listener's expected reception from the
    // actions the nodes just took. Physical channels via the assignment
    // (static, so post-slot queries agree with in-slot resolution).
    for (NodeId u = 0; u < n; ++u) {
      const auto& me = *nodes[static_cast<std::size_t>(u)];
      if (me.last_mode_ != Mode::Listen) {
        if (me.last_mode_ == Mode::Broadcast) {
          EXPECT_FALSE(me.heard_);
        }
        continue;
      }
      const Channel my_ch = assignment.global_channel(u, me.last_label_);
      int talkers = 0;
      NodeId talker = kNoNode;
      for (NodeId v : topo.neighbors(u)) {
        const auto& peer = *nodes[static_cast<std::size_t>(v)];
        if (peer.last_mode_ == Mode::Broadcast &&
            assignment.global_channel(v, peer.last_label_) == my_ch) {
          ++talkers;
          talker = v;
        }
      }
      if (talkers == 1) {
        EXPECT_TRUE(me.heard_) << "slot " << s << " node " << u;
        EXPECT_EQ(me.sender_, talker);
      } else {
        EXPECT_FALSE(me.heard_) << "slot " << s << " node " << u
                                << " talkers=" << talkers;
      }
    }
  }
}

TEST(MultihopCast, SingleNodeTrivial) {
  IdentityAssignment assignment(1, 2, LabelMode::Global, Rng(1));
  const Topology topo = Topology::clique(1);
  MultihopCastConfig config;
  const auto out = run_multihop_cast(assignment, topo, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0);
}

}  // namespace
}  // namespace cogradio
