// Integration + property tests for CogCast (Section 4 / Theorem 4).
#include "core/cogcast.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runtime.h"
#include "sim/assignment.h"
#include "sim/jamming.h"

namespace cogradio {
namespace {

using Param = std::tuple<std::string, int, int, int>;  // pattern, n, c, k

class CogCastSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CogCastSweep, InformsEveryoneAndBuildsAValidTree) {
  const auto& [pattern, n, c, k] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto assignment =
        make_assignment(pattern, n, c, k, LabelMode::LocalRandom, Rng(seed));
    CogCastRunConfig config;
    config.params = {n, c, k, /*gamma=*/4.0};
    config.seed = seed * 1000 + 7;
    const BroadcastOutcome out = run_cogcast(*assignment, config);
    ASSERT_TRUE(out.completed)
        << pattern << " n=" << n << " c=" << c << " k=" << k;
    EXPECT_TRUE(valid_distribution_tree(0, out.informed_slot, out.parent));
    EXPECT_EQ(out.slots, *std::max_element(out.informed_slot.begin(),
                                           out.informed_slot.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CogCastSweep,
    ::testing::Values(Param{"shared-core", 16, 8, 2},
                      Param{"shared-core", 64, 8, 4},
                      Param{"partitioned", 16, 8, 2},
                      Param{"partitioned", 32, 6, 1},
                      Param{"pigeonhole", 16, 8, 2},
                      Param{"pigeonhole", 48, 12, 6},
                      Param{"identity", 24, 6, 6},
                      Param{"dynamic-shared-core", 16, 8, 2},
                      Param{"dynamic-pigeonhole", 16, 8, 4}),
    [](const auto& info) {
      std::string p = std::get<0>(info.param);
      for (auto& ch : p)
        if (ch == '-') ch = '_';
      return p + "_n" + std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param));
    });

TEST(CogCast, SingleNodeIsTriviallyDone) {
  IdentityAssignment assignment(1, 3, LabelMode::Global, Rng(1));
  CogCastRunConfig config;
  config.params = {1, 3, 3};
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0);
  EXPECT_EQ(out.informed_slot[0], 0);
}

TEST(CogCast, TwoNodesRendezvous) {
  SharedCoreAssignment assignment(2, 6, 2, LabelMode::LocalRandom, Rng(2));
  CogCastRunConfig config;
  config.params = {2, 6, 2};
  config.seed = 11;
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.parent[1], 0);
}

TEST(CogCast, NonZeroSourceWorks) {
  SharedCoreAssignment assignment(10, 6, 3, LabelMode::LocalRandom, Rng(3));
  CogCastRunConfig config;
  config.params = {10, 6, 3};
  config.source = 7;
  const auto out = run_cogcast(assignment, config);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(valid_distribution_tree(7, out.informed_slot, out.parent));
  EXPECT_EQ(out.informed_slot[7], 0);
}

TEST(CogCast, CompletesWithinTheTheorem4Horizon) {
  // With gamma = 4 the run should finish within the horizon on typical
  // instances — this is the w.h.p. statement of Theorem 4 made empirical.
  int completed_within = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    SharedCoreAssignment assignment(32, 8, 2, LabelMode::LocalRandom,
                                    Rng(100 + static_cast<std::uint64_t>(t)));
    CogCastRunConfig config;
    config.params = {32, 8, 2, 4.0};
    config.seed = 200 + static_cast<std::uint64_t>(t);
    const auto out = run_cogcast(assignment, config);
    if (out.completed && out.slots <= config.params.horizon()) ++completed_within;
  }
  EXPECT_GE(completed_within, kTrials - 2);
}

TEST(CogCast, BoundedModeIdlesAfterHorizon) {
  SharedCoreAssignment assignment(8, 6, 3, LabelMode::LocalRandom, Rng(4));
  CogCastRunConfig config;
  config.params = {8, 6, 3};
  config.bounded = true;
  config.max_slots = config.params.horizon() + 50;
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
  EXPECT_LE(out.slots, config.params.horizon());
}

TEST(CogCast, HorizonFormulaMatchesTheorem4Shape) {
  // horizon ~ gamma * (c/k) * max(1, c/n) * lg n.
  const CogCastParams small{64, 8, 2, 1.0};
  EXPECT_EQ(small.horizon(),
            static_cast<Slot>(std::ceil((8.0 / 2.0) * 1.0 * 6.0)));
  // c > n engages the max(1, c/n) factor.
  const CogCastParams wide{4, 16, 2, 1.0};
  EXPECT_EQ(wide.horizon(),
            static_cast<Slot>(std::ceil((16.0 / 2.0) * 4.0 * 2.0)));
}

TEST(CogCast, CGreaterThanNCaseStillCompletes) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SharedCoreAssignment assignment(4, 16, 4, LabelMode::LocalRandom,
                                    Rng(seed));
    CogCastRunConfig config;
    config.params = {4, 16, 4};
    config.seed = seed;
    const auto out = run_cogcast(assignment, config);
    EXPECT_TRUE(out.completed);
  }
}

TEST(CogCast, ToleratesRandomJamming) {
  // Theorem 18 transfer: with per-node budget j over c channels, CogCast
  // behaves like a run with overlap c - 2j and still completes.
  const int n = 16, c = 12, jam_budget = 3;
  IdentityAssignment assignment(n, c, LabelMode::LocalRandom, Rng(5));
  RandomJammer jammer(n, c, jam_budget, Rng(6));
  CogCastRunConfig config;
  config.params = {n, c, c - 2 * jam_budget, 6.0};
  config.seed = 7;
  config.jammer = &jammer;
  config.max_slots = 20 * config.params.horizon();
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
}

TEST(CogCast, HistoryRecordsEverySlot) {
  Message payload;
  payload.type = MessageType::Data;
  IdentityAssignment assignment(2, 2, LabelMode::Global, Rng(8));
  CogCastNode source(0, 2, true, payload, Rng(9), /*horizon=*/10,
                     /*record_history=*/true);
  CogCastNode sink(1, 2, false, payload, Rng(10), /*horizon=*/10,
                   /*record_history=*/true);
  Network net(assignment, {&source, &sink});
  // step() explicitly: run() would stop early once both nodes are done.
  for (int t = 0; t < 10; ++t) net.step();
  EXPECT_EQ(source.history().size(), 10u);
  EXPECT_EQ(sink.history().size(), 10u);
  // Source always broadcasts; sink listens until informed then broadcasts.
  for (const auto& rec : source.history()) EXPECT_TRUE(rec.broadcast);
  ASSERT_TRUE(sink.informed());
  const auto informed_idx = static_cast<std::size_t>(sink.informed_slot() - 1);
  EXPECT_TRUE(sink.history()[informed_idx].first_informed);
  for (std::size_t i = 0; i < informed_idx; ++i)
    EXPECT_FALSE(sink.history()[i].broadcast);
  for (std::size_t i = informed_idx + 1; i < 10; ++i)
    EXPECT_TRUE(sink.history()[i].broadcast);
}

TEST(CogCast, ParentIsTheActualInformer) {
  // Cross-check parents against an external observer oracle.
  const int n = 12, c = 6, k = 3;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(11));
  Message payload;
  payload.type = MessageType::Data;
  Rng seeder(12);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(u, c, u == 0, payload,
                                                  seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);

  // Observer: remember which node won each channel per slot.
  std::vector<std::pair<Slot, std::vector<std::pair<Channel, NodeId>>>> wins;
  net.set_observer([&](Slot t, std::span<const ResolvedAction> acts) {
    std::vector<std::pair<Channel, NodeId>> w;
    for (const auto& a : acts)
      if (a.tx_success) w.emplace_back(a.channel, a.node);
    wins.emplace_back(t, std::move(w));
  });
  net.run(10'000);
  for (const auto& node : nodes) ASSERT_TRUE(node->informed());

  for (NodeId u = 1; u < n; ++u) {
    const Slot s = nodes[static_cast<std::size_t>(u)]->informed_slot();
    const NodeId parent = nodes[static_cast<std::size_t>(u)]->parent();
    // Find the channel u listened on in slot s and check the winner there.
    const Channel ch = assignment.global_channel(
        u, nodes[static_cast<std::size_t>(u)]->informed_label());
    const auto& slot_wins = wins[static_cast<std::size_t>(s - 1)].second;
    bool found = false;
    for (const auto& [wch, winner] : slot_wins)
      if (wch == ch) {
        EXPECT_EQ(winner, parent);
        found = true;
      }
    EXPECT_TRUE(found) << "node " << u;
  }
}

TEST(CogCast, MultiSourceStartsInformedAndCompletes) {
  SharedCoreAssignment assignment(24, 8, 2, LabelMode::LocalRandom, Rng(51));
  CogCastRunConfig config;
  config.params = {24, 8, 2};
  config.seed = 52;
  config.extra_sources = {5, 9};
  const auto out = run_cogcast(assignment, config);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.informed_slot[0], 0);
  EXPECT_EQ(out.informed_slot[5], 0);
  EXPECT_EQ(out.informed_slot[9], 0);
  // Non-sources have proper parents that were informed earlier.
  for (NodeId u = 1; u < 24; ++u) {
    if (u == 5 || u == 9) continue;
    const NodeId pa = out.parent[static_cast<std::size_t>(u)];
    ASSERT_NE(pa, kNoNode);
    EXPECT_LT(out.informed_slot[static_cast<std::size_t>(pa)],
              out.informed_slot[static_cast<std::size_t>(u)]);
  }
}

TEST(CogCast, ChannelBiasDistributionMatchesZipf) {
  // With s = 1 over c = 4 labels, weights 1, 1/2, 1/3, 1/4 (sum 25/12).
  Message payload;
  payload.type = MessageType::Data;
  CogCastNode node(0, 4, true, payload, Rng(5));
  node.set_channel_bias(1.0);
  IdentityAssignment assignment(1, 4, LabelMode::Global, Rng(6));
  std::vector<int> counts(4, 0);
  Network net(assignment, {&node});
  net.set_observer([&](Slot, std::span<const ResolvedAction> acts) {
    ++counts[static_cast<std::size_t>(acts[0].channel)];
  });
  constexpr int kSlots = 40'000;
  for (int t = 0; t < kSlots; ++t) net.step();
  const double total = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  for (int i = 0; i < 4; ++i) {
    const double expected = kSlots * (1.0 / (i + 1)) / total;
    EXPECT_NEAR(counts[static_cast<std::size_t>(i)], expected, expected * 0.1)
        << "label " << i;
  }
}

TEST(CogCast, ZeroBiasIsUniform) {
  Message payload;
  payload.type = MessageType::Data;
  CogCastNode node(0, 8, true, payload, Rng(7));
  node.set_channel_bias(0.0);  // explicit reset to uniform
  IdentityAssignment assignment(1, 8, LabelMode::Global, Rng(8));
  std::vector<int> counts(8, 0);
  Network net(assignment, {&node});
  net.set_observer([&](Slot, std::span<const ResolvedAction> acts) {
    ++counts[static_cast<std::size_t>(acts[0].channel)];
  });
  for (int t = 0; t < 16'000; ++t) net.step();
  for (int count : counts) EXPECT_NEAR(count, 2000, 300);
}

TEST(CogCast, RejectsInvalidConfig) {
  IdentityAssignment assignment(4, 4, LabelMode::Global, Rng(1));
  CogCastRunConfig config;
  config.params = {5, 4, 2};  // n mismatch
  EXPECT_THROW(run_cogcast(assignment, config), std::invalid_argument);
  config.params = {4, 4, 2};
  config.source = 9;
  EXPECT_THROW(run_cogcast(assignment, config), std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
