// Tests for the property-based testing harness (util/proptest.h):
// generator determinism and validity, the default invariant property over
// a seeded sweep, jobs-independence of the report, and counterexample
// shrinking converging to the known-minimal scenario of a synthetic
// property.
#include "util/proptest.h"

#include <gtest/gtest.h>

#include <set>

#include "util/sweep.h"

namespace cogradio {
namespace {

TEST(PropTest, GeneratorIsPureInSeedAndTrial) {
  for (int t = 0; t < 20; ++t) {
    const Scenario a = scenario_for(7, t);
    const Scenario b = scenario_for(7, t);
    EXPECT_TRUE(a == b) << "trial " << t;
    EXPECT_EQ(describe(a), describe(b));
  }
  // Different trials must not all collapse to one scenario.
  std::set<std::string> distinct;
  for (int t = 0; t < 20; ++t) distinct.insert(describe(scenario_for(7, t)));
  EXPECT_GT(distinct.size(), 10u);
}

TEST(PropTest, GeneratedScenariosAreCanonical) {
  for (int t = 0; t < 200; ++t) {
    const Scenario s = scenario_for(3, t);
    EXPECT_TRUE(s == canonicalize(s)) << describe(s);
    EXPECT_GE(s.n, 1);
    EXPECT_GE(s.k, 1);
    EXPECT_LE(s.k, s.c);
    if (s.pattern == ScnPattern::Identity) EXPECT_EQ(s.k, s.c);
    if (s.jammer == ScnJammer::None) EXPECT_EQ(s.jam_budget, 0);
    if (s.engine == ScnEngine::AllDelivered ||
        s.engine == ScnEngine::CollisionLoss)
      EXPECT_EQ(s.loss_prob, 0.0);
    EXPECT_LE(s.crashes + s.outages, s.n);
  }
}

TEST(PropTest, EveryGeneratedScenarioMaterializes) {
  // check_scenario must never throw, whatever the generator produces.
  for (int t = 0; t < 24; ++t)
    EXPECT_NO_THROW((void)check_scenario(scenario_for(11, t))) << t;
}

TEST(PropTest, DefaultPropertySweepIsClean) {
  const PropReport rep = run_property(
      [](const Scenario& s) { return check_scenario(s); }, 24, 5, 2);
  EXPECT_TRUE(rep.ok()) << (rep.failing.empty()
                                ? "no detail"
                                : rep.failing.front().message + " | " +
                                      describe(rep.failing.front().shrunk));
  EXPECT_EQ(rep.trials, 24);
}

TEST(PropTest, ReportIsIdenticalForAnyJobCount) {
  // Use a synthetic partial-failure property so the failure path is
  // exercised too, without an expensive simulation per trial.
  const Property prop = [](const Scenario& s) {
    return s.n % 3 == 0 ? "n divisible by three" : "";
  };
  const PropReport serial = run_property(prop, 40, 9, 1);
  const PropReport wide = run_property(prop, 40, 9, 4);
  EXPECT_EQ(serial.failures, wide.failures);
  ASSERT_EQ(serial.failing.size(), wide.failing.size());
  for (std::size_t i = 0; i < serial.failing.size(); ++i) {
    EXPECT_EQ(serial.failing[i].trial, wide.failing[i].trial);
    EXPECT_TRUE(serial.failing[i].shrunk == wide.failing[i].shrunk);
    EXPECT_EQ(serial.failing[i].repro, wide.failing[i].repro);
  }
}

TEST(PropTest, ShrinkingFindsTheMinimalCounterexample) {
  // Fails iff n >= 6 and slots >= 20: the unique minimal failing scenario
  // has exactly n = 6 and slots = 20 with everything else simplified.
  const Property prop = [](const Scenario& s) {
    return (s.n >= 6 && s.slots >= 20) ? "too big" : "";
  };
  Scenario big;
  big.n = 40;
  big.c = 5;
  big.k = 3;
  big.slots = 300;
  big.protocol = ScnProtocol::Gossip;
  big.jammer = ScnJammer::Sweep;
  big.jam_budget = 2;
  big.engine = ScnEngine::Backoff;
  big.loss_prob = 0.25;
  big.crashes = 2;
  ASSERT_FALSE(prop(canonicalize(big)).empty());

  const auto [shrunk, steps] = shrink_scenario(prop, big);
  EXPECT_GT(steps, 0);
  EXPECT_EQ(shrunk.n, 6);
  EXPECT_EQ(shrunk.slots, 20);
  EXPECT_EQ(shrunk.jammer, ScnJammer::None);
  EXPECT_EQ(shrunk.engine, ScnEngine::Plain);
  EXPECT_EQ(shrunk.protocol, ScnProtocol::Random);
  EXPECT_EQ(shrunk.loss_prob, 0.0);
  EXPECT_EQ(shrunk.crashes, 0);
}

TEST(PropTest, ShrinkRespectsItsBudget) {
  int evals = 0;
  const Property prop = [&evals](const Scenario& s) {
    ++evals;
    return s.n >= 2 ? "fails" : "";
  };
  Scenario big;
  big.n = 64;
  big.slots = 512;
  (void)shrink_scenario(prop, big, /*budget=*/10);
  EXPECT_LE(evals, 10);
}

TEST(PropTest, ReproducerLineRoundTrips) {
  const PropFailure f{/*trial=*/17, {}, {}, 0, "", reproducer_line(99, 17)};
  EXPECT_EQ(f.repro, "cograd check --seed 99 --trial 17");
  EXPECT_EQ(reproducer_line(99, 17, /*with_faults=*/true),
            "cograd check --seed 99 --trial 17 --faults");
  // The scenario the line names is the one the sweep ran.
  EXPECT_TRUE(scenario_for(99, 17) == canonicalize(scenario_for(99, 17)));
}

// --- FaultProfile scenario dimension -----------------------------------------

TEST(PropTest, FaultDrawsNeverPerturbHistoricalScenarios) {
  // --faults appends draws strictly after every legacy field, so stripping
  // the profile from a faulted scenario recovers the fault-free one.
  int with_any = 0;
  for (int t = 0; t < 20; ++t) {
    const Scenario base = scenario_for(7, t);
    Scenario faulted = scenario_for(7, t, /*with_faults=*/true);
    if (faulted.faults.any()) ++with_any;
    faulted.faults = FaultProfile{};
    EXPECT_TRUE(faulted == base) << "trial " << t;
  }
  EXPECT_GT(with_any, 10);  // the fault dimension is actually populated
}

TEST(PropTest, FaultedScenariosAreCanonicalAndMaterialize) {
  for (int t = 0; t < 24; ++t) {
    const Scenario s = scenario_for(11, t, /*with_faults=*/true);
    EXPECT_TRUE(s == canonicalize(s)) << describe(s);
    EXPECT_LE(s.faults.burst_nodes, s.n);
    if (s.faults.burst_nodes == 0) {
      EXPECT_EQ(s.faults.burst_len, 0);
    }
    EXPECT_NO_THROW((void)check_scenario(s)) << t;
  }
}

TEST(PropTest, FaultedPropertySweepIsClean) {
  const PropReport rep =
      run_property([](const Scenario& s) { return check_scenario(s); }, 24, 5,
                   2, 8, 256, /*with_faults=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.failing.empty()
                                ? "no detail"
                                : rep.failing.front().message + " | " +
                                      describe(rep.failing.front().shrunk));
}

TEST(PropTest, InjectionCountsAccumulateAcrossTrials) {
  FaultInjectionCounts counts;
  CheckOptions options;
  options.injections = &counts;
  for (int t = 0; t < 60 && !counts.all_kinds_exercised(); ++t)
    (void)check_scenario(scenario_for(1, t, /*with_faults=*/true), options);
  EXPECT_TRUE(counts.all_kinds_exercised());
  for (int k = 0; k < kNumFaultKinds; ++k)
    EXPECT_GT(counts.total(static_cast<FaultKind>(k)), 0) << k;
}

TEST(PropTest, ShrinkingReducesFaultProfilesToTheMinimalWindow) {
  // Fails iff any churn is scheduled (windows or burst): the minimal
  // counterexample keeps exactly one churn window and drops every other
  // fault along with the rest of the scenario.
  const Property prop = [](const Scenario& s) {
    return (s.faults.churn > 0 || s.faults.burst_nodes > 0) ? "has churn" : "";
  };
  Scenario big;
  big.n = 30;
  big.slots = 200;
  big.faults = FaultProfile{3, 3, 3, 3, 3, 8, 30};
  ASSERT_FALSE(prop(canonicalize(big)).empty());
  const auto [shrunk, steps] = shrink_scenario(prop, big);
  EXPECT_GT(steps, 0);
  EXPECT_EQ(shrunk.faults.churn + shrunk.faults.burst_nodes, 1);
  EXPECT_EQ(shrunk.faults.deaf, 0);
  EXPECT_EQ(shrunk.faults.mute, 0);
  EXPECT_EQ(shrunk.faults.babble, 0);
  EXPECT_EQ(shrunk.faults.feedback_drop, 0);
  EXPECT_EQ(shrunk.n, 1);
  EXPECT_EQ(shrunk.slots, 8);
}

TEST(PropTest, FaultScheduleSerializesForArtifacts) {
  Scenario s;
  s.faults.churn = 1;
  const std::string schedule = fault_schedule_for(s);
  EXPECT_NE(schedule.find("kind=churn"), std::string::npos);
  // Same scenario, same schedule — and no faults means no schedule.
  EXPECT_EQ(schedule, fault_schedule_for(s));
  s.faults = FaultProfile{};
  EXPECT_TRUE(fault_schedule_for(s).empty());
}

TEST(PropTest, FailuresCarryShrunkScenarioAndRepro) {
  const Property prop = [](const Scenario& s) {
    return s.slots >= 10 ? "always for canonical slots" : "";
  };
  const PropReport rep = run_property(prop, 6, 2, 2, /*max_reported=*/3);
  EXPECT_EQ(rep.failures, 6);
  ASSERT_EQ(rep.failing.size(), 3u);  // capped at max_reported
  for (const PropFailure& f : rep.failing) {
    EXPECT_FALSE(f.message.empty());
    EXPECT_EQ(f.repro, reproducer_line(2, f.trial));
    EXPECT_FALSE(prop(f.shrunk).empty()) << "shrunk scenario must still fail";
    EXPECT_EQ(f.shrunk.slots, 10);  // slots floor under this property is 10
  }
}

}  // namespace
}  // namespace cogradio
