// Unit tests for the telemetry stack: JSON writer/parser round-trips,
// atomic manifest writes, the RunManifest schema, and the bench
// regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "analysis/bench_suite.h"
#include "util/atomic_file.h"
#include "util/bench_gate.h"
#include "util/bench_report.h"
#include "util/json.h"

namespace cogradio {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonParse, ParsesScalarsAndStructures) {
  std::string error;
  const auto doc = parse_json(
      R"({"s": "a\"b\\c\n", "i": -42, "d": 1.5e3, "t": true, "z": null,
          "arr": [1, 2, 3], "obj": {"nested": 0}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("s")->as_string(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(doc->find("i")->as_number(), -42);
  EXPECT_DOUBLE_EQ(doc->find("d")->as_number(), 1500);
  EXPECT_TRUE(doc->find("t")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  EXPECT_EQ(doc->find("arr")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->find("obj")->find("nested")->as_number(), 0);
}

TEST(JsonParse, RejectsTrailingGarbageAndTruncation) {
  std::string error;
  EXPECT_FALSE(parse_json("{} x", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\": ", &error).has_value());
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\": 1,}", &error).has_value());
}

TEST(BenchReport, ToJsonRoundTripsHostileKeys) {
  BenchReport report("quote\"backslash\\newline\n");
  report.set("key with \"quotes\"", 1.25);
  report.set_int("tab\there", 7);
  std::string error;
  const auto doc = parse_json(report.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("name")->as_string(), "quote\"backslash\\newline\n");
  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->find("key with \"quotes\"")->as_number(), 1.25);
  EXPECT_DOUBLE_EQ(metrics->find("tab\there")->as_number(), 7);
}

TEST(BenchReport, NonFiniteValuesSerializeAsNull) {
  BenchReport report("nonfinite");
  report.set("nan", std::numeric_limits<double>::quiet_NaN());
  report.set("inf", std::numeric_limits<double>::infinity());
  report.set("ok", 2.0);
  std::string error;
  const auto doc = parse_json(report.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("metrics")->find("nan")->is_null());
  EXPECT_TRUE(doc->find("metrics")->find("inf")->is_null());
  EXPECT_DOUBLE_EQ(doc->find("metrics")->find("ok")->as_number(), 2.0);
}

TEST(AtomicWrite, FailedWriteLeavesNoFile) {
  // Writing into a missing directory must fail cleanly: no target file,
  // no stray .tmp.
  const std::string path = "no_such_dir_xyz/report.json";
  EXPECT_FALSE(write_file_atomic(path, "content"));
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(AtomicWrite, OverwritesExistingFileCompletely) {
  const std::string path = "atomic_write_test.json";
  ASSERT_TRUE(write_file_atomic(path, "first version, quite long content"));
  ASSERT_TRUE(write_file_atomic(path, "second"));
  EXPECT_EQ(read_all(path), "second");
  EXPECT_FALSE(exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(RunManifest, CarriesConfigMetricsAndVolatileSections) {
  RunManifest manifest("exp_test");
  manifest.set_config_int("n", 32);
  manifest.set_config_double("gamma", 4.0);
  manifest.set_config_string("pattern", "shared-core");
  manifest.set_config_bool("mediated", true);
  manifest.set("slots.median", 17.5);
  manifest.set_int("deliveries", 96);
  manifest.set_volatile("wall_clock_seconds", 0.25);
  std::string error;
  const auto doc = parse_json(manifest.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("name")->as_string(), "exp_test");
  EXPECT_DOUBLE_EQ(doc->find("schema_version")->as_number(), 1);
  ASSERT_NE(doc->find("git_revision"), nullptr);
  const JsonValue* config = doc->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->find("n")->as_number(), 32);
  EXPECT_DOUBLE_EQ(config->find("gamma")->as_number(), 4.0);
  EXPECT_EQ(config->find("pattern")->as_string(), "shared-core");
  EXPECT_TRUE(config->find("mediated")->as_bool());
  EXPECT_DOUBLE_EQ(doc->find("metrics")->find("slots.median")->as_number(),
                   17.5);
  EXPECT_DOUBLE_EQ(doc->find("volatile")
                       ->find("wall_clock_seconds")
                       ->as_number(),
                   0.25);
  EXPECT_EQ(validate_manifest(*doc), "");
}

TEST(RunManifest, MergeStripsVolatileSections) {
  RunManifest a("exp_a");
  a.set("m", 1.0);
  a.set_volatile("wall_clock_seconds", 9.9);
  RunManifest b("exp_b");
  b.set_int("k", 2);
  const std::string merged = merge_manifests("all", {a, b});
  EXPECT_EQ(merged.find("volatile"), std::string::npos);
  EXPECT_EQ(merged.find("9.9"), std::string::npos);
  std::string error;
  const auto doc = parse_json(merged, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(validate_manifest(*doc), "");
  const auto flat = flatten_metrics(*doc);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0].first, "exp_a.m");
  EXPECT_EQ(flat[1].first, "exp_b.k");
}

TEST(ValidateManifest, RejectsStructuralDefects) {
  std::string error;
  const auto no_name = parse_json(R"({"metrics": {}})", &error);
  ASSERT_TRUE(no_name.has_value());
  EXPECT_NE(validate_manifest(*no_name), "");
  const auto bad_metric =
      parse_json(R"({"name": "x", "metrics": {"m": "oops"}})", &error);
  ASSERT_TRUE(bad_metric.has_value());
  EXPECT_NE(validate_manifest(*bad_metric), "");
  const auto bad_exp =
      parse_json(R"({"name": "x", "experiments": [{"name": ""}]})", &error);
  ASSERT_TRUE(bad_exp.has_value());
  EXPECT_NE(validate_manifest(*bad_exp), "");
}

TEST(Tolerances, ParseAndLongestPrefixMatch) {
  std::string error;
  const auto doc = parse_json(
      R"({"default_rel_tol": 0.01,
          "metrics": {"exp.*": 0.1, "exp.slots.*": 0.2, "exp.slots.median": 0}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto tol = parse_tolerances(*doc, &error);
  ASSERT_TRUE(tol.has_value()) << error;
  EXPECT_DOUBLE_EQ(tol->tolerance_for("other.m"), 0.01);
  EXPECT_DOUBLE_EQ(tol->tolerance_for("exp.deliveries"), 0.1);
  EXPECT_DOUBLE_EQ(tol->tolerance_for("exp.slots.p95"), 0.2);
  EXPECT_DOUBLE_EQ(tol->tolerance_for("exp.slots.median"), 0);
}

TEST(Tolerances, RejectsNegativeAndNonNumeric) {
  std::string error;
  const auto neg = parse_json(R"({"default_rel_tol": -1})", &error);
  ASSERT_TRUE(neg.has_value());
  EXPECT_FALSE(parse_tolerances(*neg, &error).has_value());
  const auto bad = parse_json(R"({"metrics": {"a": "x"}})", &error);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(parse_tolerances(*bad, &error).has_value());
}

JsonValue manifest_doc(const std::string& json) {
  std::string error;
  const auto doc = parse_json(json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return *doc;
}

TEST(Gate, IdenticalManifestsPass) {
  const JsonValue doc = manifest_doc(
      R"({"name": "e", "metrics": {"a": 1.0, "b": 2, "nul": null}})");
  const GateResult result =
      compare_bench_manifests(doc, doc, GateTolerances{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.compared, 3);
  EXPECT_NE(result.report().find("0 breach(es)"), std::string::npos);
}

TEST(Gate, PerturbationBeyondToleranceBreaches) {
  const JsonValue base =
      manifest_doc(R"({"name": "e", "metrics": {"a": 100.0}})");
  const JsonValue cur =
      manifest_doc(R"({"name": "e", "metrics": {"a": 104.0}})");
  GateTolerances tol;
  tol.default_rel_tol = 0.01;
  const GateResult fail = compare_bench_manifests(cur, base, tol);
  EXPECT_FALSE(fail.ok());
  EXPECT_NE(fail.report().find("BREACH"), std::string::npos);
  tol.default_rel_tol = 0.05;
  EXPECT_TRUE(compare_bench_manifests(cur, base, tol).ok());
}

TEST(Gate, MissingMetricIsABreachNewMetricIsNot) {
  const JsonValue base =
      manifest_doc(R"({"name": "e", "metrics": {"gone": 1.0}})");
  const JsonValue cur =
      manifest_doc(R"({"name": "e", "metrics": {"fresh": 2.0}})");
  const GateResult result =
      compare_bench_manifests(cur, base, GateTolerances{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.breaches, 1);
  EXPECT_NE(result.report().find("MISSING"), std::string::npos);
  EXPECT_NE(result.report().find("NEW"), std::string::npos);
}

TEST(Gate, BaselineNullAgainstNumericCurrentBreaches) {
  const JsonValue base =
      manifest_doc(R"({"name": "e", "metrics": {"m": null}})");
  const JsonValue cur = manifest_doc(R"({"name": "e", "metrics": {"m": 3}})");
  EXPECT_FALSE(compare_bench_manifests(cur, base, GateTolerances{}).ok());
  EXPECT_TRUE(compare_bench_manifests(base, base, GateTolerances{}).ok());
}

TEST(SmokeSuite, MetricsAreJobsInvariant) {
  SmokeOptions sequential;
  sequential.trials = 4;
  SmokeOptions parallel = sequential;
  parallel.jobs = 3;
  for (const std::string& name : {std::string("smoke_e1_cogcast"),
                                  std::string("smoke_trace_counters")}) {
    const RunManifest a = run_smoke_experiment(name, sequential);
    const RunManifest b = run_smoke_experiment(name, parallel);
    EXPECT_EQ(a.to_json(/*include_volatile=*/false),
              b.to_json(/*include_volatile=*/false))
        << name;
  }
}

TEST(SmokeSuite, EveryExperimentEmitsAValidGateableManifest) {
  SmokeOptions options;
  options.trials = 2;
  std::vector<RunManifest> runs;
  for (const std::string& name : smoke_experiment_names())
    runs.push_back(run_smoke_experiment(name, options));
  const std::string merged = merge_manifests("smoke", runs);
  std::string error;
  const auto doc = parse_json(merged, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(validate_manifest(*doc), "");
  EXPECT_FALSE(flatten_metrics(*doc).empty());
  // Self-comparison passes the gate with zero tolerance.
  EXPECT_TRUE(compare_bench_manifests(*doc, *doc, GateTolerances{}).ok());
}

}  // namespace
}  // namespace cogradio
