// Tests for connectivity topologies (sim/topology.h).
#include "sim/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace cogradio {
namespace {

TEST(Topology, CliqueShape) {
  const Topology t = Topology::clique(5);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_edges(), 10);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_EQ(t.max_degree(), 4);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(t.are_neighbors(0, 4));
}

TEST(Topology, LineShape) {
  const Topology t = Topology::line(6);
  EXPECT_EQ(t.num_edges(), 5);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_EQ(t.max_degree(), 2);
  EXPECT_TRUE(t.are_neighbors(2, 3));
  EXPECT_FALSE(t.are_neighbors(0, 2));
  const auto depth = t.hop_depths(0);
  EXPECT_EQ(depth[5], 5);
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(8);
  EXPECT_EQ(t.num_edges(), 8);
  EXPECT_EQ(t.diameter(), 4);
  EXPECT_TRUE(t.are_neighbors(7, 0));
}

TEST(Topology, SmallRingDegeneratesToLine) {
  EXPECT_EQ(Topology::ring(2).num_edges(), 1);
  EXPECT_EQ(Topology::ring(1).num_edges(), 0);
}

TEST(Topology, GridShape) {
  const Topology t = Topology::grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  EXPECT_EQ(t.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(t.diameter(), 2 + 3);
  EXPECT_EQ(t.max_degree(), 4);
  EXPECT_TRUE(t.are_neighbors(0, 1));
  EXPECT_TRUE(t.are_neighbors(0, 4));
  EXPECT_FALSE(t.are_neighbors(0, 5));
}

TEST(Topology, SingleNode) {
  const Topology t = Topology::clique(1);
  EXPECT_EQ(t.diameter(), 0);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(Topology, GeometricIsConnectedAndSymmetric) {
  const Topology t = Topology::random_geometric(30, 0.35, Rng(7));
  EXPECT_TRUE(t.connected());
  for (NodeId u = 0; u < 30; ++u)
    for (NodeId v : t.neighbors(u)) EXPECT_TRUE(t.are_neighbors(v, u));
}

TEST(Topology, GeometricTooSparseThrows) {
  EXPECT_THROW(Topology::random_geometric(40, 0.01, Rng(8)),
               std::runtime_error);
}

TEST(Topology, HopDepthsMatchBfsInvariant) {
  const Topology t = Topology::grid(4, 4);
  const auto depth = t.hop_depths(0);
  // Manhattan distance on the grid.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(depth[static_cast<std::size_t>(r * 4 + c)], r + c);
}

TEST(Topology, Validation) {
  EXPECT_THROW(Topology::clique(0), std::invalid_argument);
  EXPECT_THROW(Topology::grid(0, 3), std::invalid_argument);
  EXPECT_THROW(Topology::random_geometric(3, 0.0, Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
