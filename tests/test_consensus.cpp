// Tests for CogConsensus (core/consensus.h): agreement, validity and
// termination of the CogComp + CogCast composition.
#include "core/consensus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

struct ConsensusRun {
  std::vector<std::unique_ptr<CogConsensusNode>> nodes;
  Slot slots = 0;
  bool all_decided = false;
};

ConsensusRun run_consensus(const std::string& pattern, int n, int c, int k,
                           const std::vector<Value>& proposals,
                           ConsensusRule rule, std::uint64_t seed) {
  ConsensusRun run;
  const ConsensusParams params{n, c, k, 4.0};
  auto assignment =
      make_assignment(pattern, n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed * 131 + 7);
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    run.nodes.push_back(std::make_unique<CogConsensusNode>(
        u, params, u == 0, proposals[static_cast<std::size_t>(u)], rule,
        seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(run.nodes.back().get());
  }
  NetworkOptions net;
  net.seed = seed + 5;
  Network network(*assignment, protocols, net);
  run.slots = network.run(params.max_slots());
  run.all_decided = network.all_done();
  return run;
}

using Param = std::tuple<std::string, int, int, int>;

class ConsensusSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ConsensusSweep, AgreementValidityTermination) {
  const auto& [pattern, n, c, k] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const auto proposals = make_values(n, seed ^ 0xC0FFEE, -500, 500);
    const auto run =
        run_consensus(pattern, n, c, k, proposals, min_consensus(), seed);
    ASSERT_TRUE(run.all_decided);
    // Termination: within the fixed slot budget.
    EXPECT_LE(run.slots, (ConsensusParams{n, c, k, 4.0}).max_slots());
    // Agreement: all decisions equal.
    const Value decision = run.nodes[0]->decision();
    for (const auto& node : run.nodes) {
      EXPECT_TRUE(node->decided());
      EXPECT_EQ(node->decision(), decision);
    }
    // Validity: the min rule decides the true minimum proposal.
    EXPECT_EQ(decision,
              *std::min_element(proposals.begin(), proposals.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ConsensusSweep,
    ::testing::Values(Param{"shared-core", 16, 8, 2},
                      Param{"partitioned", 12, 6, 2},
                      Param{"pigeonhole", 20, 8, 4},
                      Param{"shared-core", 4, 12, 4}),
    [](const auto& info) {
      std::string p = std::get<0>(info.param);
      for (auto& ch : p)
        if (ch == '-') ch = '_';
      return p + "_n" + std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Consensus, MaxRuleDecidesMaximum) {
  const std::vector<Value> proposals{5, -3, 42, 7, 0, 13, 42, -9, 1, 2};
  const auto run =
      run_consensus("shared-core", 10, 6, 2, proposals, max_consensus(), 9);
  ASSERT_TRUE(run.all_decided);
  EXPECT_EQ(run.nodes[3]->decision(), 42);
}

TEST(Consensus, MajorityRuleBinary) {
  // 7 ones vs 5 zeros -> decide 1.
  std::vector<Value> proposals(12, 0);
  for (int i = 0; i < 7; ++i) proposals[static_cast<std::size_t>(i)] = 1;
  const auto run = run_consensus("shared-core", 12, 6, 2, proposals,
                                 majority_consensus(), 11);
  ASSERT_TRUE(run.all_decided);
  for (const auto& node : run.nodes) EXPECT_EQ(node->decision(), 1);

  // 5 ones vs 7 zeros -> decide 0.
  std::vector<Value> proposals2(12, 0);
  for (int i = 0; i < 5; ++i) proposals2[static_cast<std::size_t>(i)] = 1;
  const auto run2 = run_consensus("shared-core", 12, 6, 2, proposals2,
                                  majority_consensus(), 13);
  ASSERT_TRUE(run2.all_decided);
  for (const auto& node : run2.nodes) EXPECT_EQ(node->decision(), 0);
}

TEST(Consensus, SourceAggregationCoversEveryone) {
  const auto proposals = make_values(18, 21, 0, 9);
  const auto run =
      run_consensus("pigeonhole", 18, 8, 3, proposals, min_consensus(), 21);
  ASSERT_TRUE(run.all_decided);
  EXPECT_TRUE(run.nodes[0]->aggregation_complete());
}

TEST(Consensus, SingleNode) {
  const std::vector<Value> proposals{7};
  const auto run =
      run_consensus("identity", 1, 4, 4, proposals, min_consensus(), 1);
  ASSERT_TRUE(run.all_decided);
  EXPECT_EQ(run.nodes[0]->decision(), 7);
}

TEST(Consensus, LeaderElectionViaMinRule) {
  // Everyone proposes its own id under Min: the decided value is the
  // smallest id — an agreed leader.
  const int n = 11;
  std::vector<Value> proposals;
  for (NodeId u = 0; u < n; ++u)
    proposals.push_back(leader_election_proposal(u));
  const auto run =
      run_consensus("shared-core", n, 6, 2, proposals, min_consensus(), 19);
  ASSERT_TRUE(run.all_decided);
  for (const auto& node : run.nodes) EXPECT_EQ(node->decision(), 0);
}

TEST(Consensus, ManySeedsAlwaysAgree) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto proposals = make_values(14, seed, -100, 100);
    const auto run = run_consensus("shared-core", 14, 6, 2, proposals,
                                   min_consensus(), seed);
    ASSERT_TRUE(run.all_decided) << "seed " << seed;
    const Value d = run.nodes[0]->decision();
    for (const auto& node : run.nodes) ASSERT_EQ(node->decision(), d);
  }
}

}  // namespace
}  // namespace cogradio
