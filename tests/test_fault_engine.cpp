// Tests for the simulator-level fault engine (sim/fault_engine.h): window
// resolution and precedence, schedule determinism, the audit log, the
// per-kind radio semantics inside Network::step under every collision
// model, and — via the testonly mutations — that the invariant oracle
// actually polices each fault rule.
#include "sim/fault_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/assignment.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "util/proptest.h"

namespace cogradio {
namespace {

using faultflag::kBabble;
using faultflag::kChurnedOut;
using faultflag::kDeaf;
using faultflag::kFeedbackDrop;
using faultflag::kMute;

// --- Engine semantics --------------------------------------------------------

TEST(FaultEngine, WindowsAreHalfOpenAndForeverIsSupported) {
  FaultEngine engine(2, 2, Rng(1));
  engine.add(0, FaultKind::Deaf, 5, 7);
  engine.add(1, FaultKind::Mute, 3);  // forever
  engine.begin_slot(4);
  EXPECT_EQ(engine.flags(0), 0);
  EXPECT_EQ(engine.flags(1), kMute);
  engine.begin_slot(5);
  EXPECT_EQ(engine.flags(0), kDeaf);
  engine.begin_slot(6);
  EXPECT_EQ(engine.flags(0), kDeaf);
  engine.begin_slot(7);
  EXPECT_EQ(engine.flags(0), 0);
  engine.begin_slot(1000);
  EXPECT_EQ(engine.flags(1), kMute);
}

TEST(FaultEngine, ChurnDominatesEveryOtherKind) {
  FaultEngine engine(1, 3, Rng(1));
  engine.add(0, FaultKind::Deaf, 1, 5);
  engine.add(0, FaultKind::Mute, 1, 5);
  engine.add(0, FaultKind::Babble, 1, 5);
  engine.add(0, FaultKind::FeedbackDrop, 1, 5);
  engine.add(0, FaultKind::Churn, 1, 5);
  engine.begin_slot(2);
  EXPECT_EQ(engine.flags(0), kChurnedOut);
  EXPECT_EQ(engine.babble_label(0), kNoChannel);
  // Post-precedence accounting: only Churn was effectively injected.
  EXPECT_EQ(engine.injected(FaultKind::Churn), 1);
  EXPECT_EQ(engine.injected(FaultKind::Deaf), 0);
  EXPECT_EQ(engine.injected(FaultKind::Babble), 0);
}

TEST(FaultEngine, MuteBeatsBabble) {
  FaultEngine engine(1, 4, Rng(1));
  engine.add(0, FaultKind::Babble, 1, 5);
  engine.add(0, FaultKind::Mute, 1, 5);
  engine.begin_slot(1);
  EXPECT_EQ(engine.flags(0), kMute);
  EXPECT_EQ(engine.babble_label(0), kNoChannel);
  engine.begin_slot(5);  // both windows closed
  EXPECT_EQ(engine.flags(0), 0);
}

TEST(FaultEngine, BabbleLabelIsStuckAcrossTheWindow) {
  FaultEngine engine(1, 4, Rng(9));
  engine.add(0, FaultKind::Babble, 1, 100);
  engine.begin_slot(1);
  const LocalLabel label = engine.babble_label(0);
  ASSERT_NE(label, kNoChannel);
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 4);
  for (Slot s = 2; s < 100; s += 17) {
    engine.begin_slot(s);
    EXPECT_EQ(engine.babble_label(0), label) << "slot " << s;
  }
}

TEST(FaultEngine, ValidatesArguments) {
  EXPECT_THROW(FaultEngine(0, 1, Rng(1)), std::invalid_argument);
  EXPECT_THROW(FaultEngine(1, 0, Rng(1)), std::invalid_argument);
  FaultEngine engine(2, 2, Rng(1));
  EXPECT_THROW(engine.add(2, FaultKind::Deaf, 1), std::invalid_argument);
  EXPECT_THROW(engine.add(-1, FaultKind::Deaf, 1), std::invalid_argument);
  EXPECT_THROW(engine.add(0, FaultKind::Deaf, 0), std::invalid_argument);
}

TEST(FaultEngine, LogRecordsOnsetAndClear) {
  FaultEngine engine(2, 2, Rng(1));
  engine.add(0, FaultKind::Deaf, 2, 4);
  engine.add(1, FaultKind::Churn, 3, 4);
  for (Slot s = 1; s <= 5; ++s) engine.begin_slot(s);
  ASSERT_EQ(engine.log().size(), 4u);
  EXPECT_EQ(engine.log()[0].slot, 2);
  EXPECT_EQ(engine.log()[0].node, 0);
  EXPECT_TRUE(engine.log()[0].onset);
  EXPECT_EQ(engine.log()[1].slot, 3);
  EXPECT_EQ(engine.log()[1].kind, FaultKind::Churn);
  EXPECT_FALSE(engine.log()[2].onset);  // deaf clears at 4
  EXPECT_FALSE(engine.log()[3].onset);  // churn clears at 4
  EXPECT_NE(engine.serialize_log().find("slot=2 node=0 kind=deaf onset"),
            std::string::npos);
  EXPECT_NE(engine.serialize_schedule().find("node=0 kind=deaf from=2 to=4"),
            std::string::npos);
}

TEST(FaultEngine, AddRandomIsDeterministicAndBudgeted) {
  const FaultProfile profile{1, 1, 1, 1, 1, 3, 5};
  FaultEngine a(10, 3, Rng(7));
  FaultEngine b(10, 3, Rng(7));
  a.add_random(profile, 50);
  b.add_random(profile, 50);
  EXPECT_EQ(a.serialize_schedule(), b.serialize_schedule());
  EXPECT_EQ(a.num_windows(), 5 + 3);  // five kind windows + burst of 3
  EXPECT_NE(a.last_burst_end(), kNoSlot);
  EXPECT_EQ(a.last_burst_end(), b.last_burst_end());
}

TEST(FaultEngine, AddRandomTruncatesWhenBudgetExceedsNodes) {
  FaultEngine engine(2, 2, Rng(3));
  engine.add_random(FaultProfile{3, 3, 3, 3, 3, 0, 0}, 20);
  EXPECT_EQ(engine.num_windows(), 2);  // the pool has only two nodes
}

TEST(FaultEngine, BurstChurnsExactlyTheGivenNodes) {
  FaultEngine engine(4, 2, Rng(3));
  const std::vector<NodeId> hit{1, 3};
  engine.add_burst(hit, 10, 5);
  EXPECT_EQ(engine.last_burst_end(), 15);
  engine.begin_slot(12);
  EXPECT_EQ(engine.flags(0), 0);
  EXPECT_EQ(engine.flags(1), kChurnedOut);
  EXPECT_EQ(engine.flags(2), 0);
  EXPECT_EQ(engine.flags(3), kChurnedOut);
  // A zero-length burst is a no-op.
  FaultEngine empty(4, 2, Rng(3));
  empty.add_burst(hit, 10, 0);
  EXPECT_EQ(empty.num_windows(), 0);
  EXPECT_EQ(empty.last_burst_end(), kNoSlot);
}

// --- Radio semantics inside Network::step ------------------------------------

// A scripted radio: always the same intent, recording every feedback.
class Script : public Protocol {
 public:
  Script(Mode mode, LocalLabel label) : mode_(mode), label_(label) {}

  Action on_slot(Slot) override {
    if (mode_ == Mode::Broadcast) {
      Message m;
      m.type = MessageType::Data;
      return Action::broadcast(label_, m);
    }
    if (mode_ == Mode::Listen) return Action::listen(label_);
    return Action::idle();
  }
  void on_feedback(Slot, const SlotResult& r) override {
    tx_attempted.push_back(r.tx_attempted);
    tx_success.push_back(r.tx_success);
    std::vector<MessageType> types;
    for (const Message& m : r.received) types.push_back(m.type);
    received.push_back(std::move(types));
  }
  bool done() const override { return false; }

  std::vector<bool> tx_attempted, tx_success;
  std::vector<std::vector<MessageType>> received;

 private:
  Mode mode_;
  LocalLabel label_;
};

// Two nodes on one shared channel (label == channel), slots 1..slots.
struct Pair {
  Pair(Mode a, Mode b)
      : assignment(2, 1, LabelMode::Global, Rng(1)),
        node_a(a, 0),
        node_b(b, 0),
        engine(2, 1, Rng(2)) {}

  void run(int slots) {
    NetworkOptions opt;
    opt.seed = 99;
    Network net(assignment, {&node_a, &node_b}, opt);
    net.set_fault_engine(&engine);
    for (int s = 0; s < slots; ++s) net.step();
    stats = net.stats();
  }

  IdentityAssignment assignment;
  Script node_a, node_b;
  FaultEngine engine;
  TraceStats stats;
};

TEST(FaultNetwork, ChurnForcesIdleAndBlanksFeedback) {
  Pair rig(Mode::Broadcast, Mode::Listen);
  rig.engine.add(0, FaultKind::Churn, 2, 4);
  rig.run(5);
  // The listener hears the broadcast except while the source is off.
  ASSERT_EQ(rig.node_b.received.size(), 5u);
  EXPECT_EQ(rig.node_b.received[0].size(), 1u);
  EXPECT_TRUE(rig.node_b.received[1].empty());
  EXPECT_TRUE(rig.node_b.received[2].empty());
  EXPECT_EQ(rig.node_b.received[3].size(), 1u);
  // The churned node learns nothing: blank feedback, no tx echo.
  EXPECT_EQ(rig.node_a.tx_attempted,
            (std::vector<bool>{true, false, false, true, true}));
  EXPECT_EQ(rig.stats.churned_node_slots, 2);
  EXPECT_EQ(rig.stats.fault_node_slots, 2);
  EXPECT_EQ(rig.stats.feedback_drops, 2);
}

TEST(FaultNetwork, BabbleContendsWithGarbageAndHearsNothing) {
  // The protocol asks for Idle every slot; the stuck radio broadcasts
  // anyway (c == 1, so the stuck label is the shared channel).
  Pair rig(Mode::Idle, Mode::Listen);
  rig.engine.add(0, FaultKind::Babble, 1, kNoSlot);
  rig.run(4);
  for (int s = 0; s < 4; ++s) {
    ASSERT_EQ(rig.node_b.received[static_cast<std::size_t>(s)].size(), 1u);
    EXPECT_EQ(rig.node_b.received[static_cast<std::size_t>(s)][0],
              MessageType::None);  // garbage, not a real message
  }
  // The babbler itself learns nothing, not even its own transmission.
  EXPECT_EQ(rig.node_a.tx_attempted, (std::vector<bool>{false, false, false,
                                                        false}));
  EXPECT_EQ(rig.stats.babble_node_slots, 4);
}

TEST(FaultNetwork, DeafTransmitterStillDeliversButHearsRealTxEcho) {
  Pair rig(Mode::Broadcast, Mode::Listen);
  rig.engine.add(0, FaultKind::Deaf, 1, kNoSlot);
  rig.run(3);
  for (const auto& got : rig.node_b.received) EXPECT_EQ(got.size(), 1u);
  // Deaf keeps the tx side of its feedback: it knows it transmitted.
  EXPECT_EQ(rig.node_a.tx_attempted, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(rig.node_a.tx_success, (std::vector<bool>{true, true, true}));
  for (const auto& got : rig.node_a.received) EXPECT_TRUE(got.empty());
}

TEST(FaultNetwork, DeafListenerReceivesNothingAndIsCounted) {
  Pair rig(Mode::Broadcast, Mode::Listen);
  rig.engine.add(1, FaultKind::Deaf, 1, kNoSlot);
  rig.run(3);
  for (const auto& got : rig.node_b.received) EXPECT_TRUE(got.empty());
  EXPECT_EQ(rig.stats.suppressed_deliveries, 3);
  EXPECT_EQ(rig.stats.deaf_node_slots, 3);
}

TEST(FaultNetwork, MuteDemotesBroadcastToListenOnTheSameLabel) {
  // Both want to broadcast; node 0 is mute, so node 1 becomes the lone
  // winner and the mute node hears it — rx stays alive.
  Pair rig(Mode::Broadcast, Mode::Broadcast);
  rig.engine.add(0, FaultKind::Mute, 1, kNoSlot);
  rig.run(3);
  for (const auto& got : rig.node_a.received) {
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], MessageType::Data);
  }
  EXPECT_EQ(rig.node_a.tx_attempted, (std::vector<bool>{false, false, false}));
  EXPECT_EQ(rig.node_b.tx_success, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(rig.stats.mute_demotions, 3);
  EXPECT_EQ(rig.stats.mute_node_slots, 3);
}

TEST(FaultNetwork, FeedbackDropActsNormallyButLearnsNothing) {
  Pair rig(Mode::Broadcast, Mode::Listen);
  rig.engine.add(0, FaultKind::FeedbackDrop, 2, 4);
  rig.run(4);
  // Physics is untouched: the listener hears every slot.
  for (const auto& got : rig.node_b.received) EXPECT_EQ(got.size(), 1u);
  // But the faulted slots' feedback is blank (no tx echo).
  EXPECT_EQ(rig.node_a.tx_attempted,
            (std::vector<bool>{true, false, false, true}));
  EXPECT_EQ(rig.stats.feedback_drops, 2);
  EXPECT_EQ(rig.stats.feedback_drop_node_slots, 2);
}

// --- Every collision model under a mixed fault schedule ----------------------

TEST(FaultNetwork, InvariantsHoldUnderEveryCollisionModel) {
  const CollisionModel models[] = {CollisionModel::OneWinner,
                                   CollisionModel::AllDelivered,
                                   CollisionModel::CollisionLoss};
  for (const CollisionModel model : models) {
    IdentityAssignment assignment(8, 2, LabelMode::Global, Rng(11));
    InvariantChecker checker;
    std::vector<std::unique_ptr<Protocol>> nodes;
    std::vector<Protocol*> protocols;
    Rng seeder(5);
    for (NodeId u = 0; u < 8; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(
          2, seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(checker.tap(*nodes.back()));
    }
    FaultEngine engine(8, 2, Rng(21));
    engine.add_random(FaultProfile{1, 1, 1, 1, 1, 3, 8}, 50);
    NetworkOptions opt;
    opt.seed = 99;
    opt.collision = model;
    Network net(assignment, protocols, opt);
    net.set_fault_engine(&engine);
    checker.attach(net);
    for (int s = 0; s < 60; ++s) net.step();
    EXPECT_TRUE(checker.ok())
        << "model " << static_cast<int>(model) << ": "
        << checker.first_violation();
    EXPECT_GT(net.stats().fault_node_slots, 0);
  }
}

TEST(FaultNetwork, SuppressionIsExactEvenUnderFading) {
  // No fade coin is spent on a dead receiver, so suppressed_deliveries
  // stays an exact delta the oracle can re-derive under loss_prob > 0.
  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(1));
  Script tx(Mode::Broadcast, 0), rx(Mode::Listen, 0);
  InvariantChecker checker;
  std::vector<Protocol*> protocols{checker.tap(tx), checker.tap(rx)};
  FaultEngine engine(2, 1, Rng(2));
  engine.add(1, FaultKind::Deaf, 2, 6);
  NetworkOptions opt;
  opt.seed = 7;
  opt.loss_prob = 0.5;
  Network net(assignment, protocols, opt);
  net.set_fault_engine(&engine);
  checker.attach(net);
  for (int s = 0; s < 8; ++s) net.step();
  EXPECT_TRUE(checker.ok()) << checker.first_violation();
  EXPECT_EQ(net.stats().suppressed_deliveries, 4);
}

// --- The oracle catches every per-kind mutation ------------------------------

// Runs a small faulted rig with `mutation` injected into the network and
// reports whether the invariant oracle flagged it. `mode` is node 0's
// scripted intent (the faulted node); node 1 always broadcasts so there
// is traffic to mis-deliver.
bool oracle_catches(TestonlyFaultMutation mutation, FaultKind kind,
                    Mode mode) {
  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(1));
  Script faulted(mode, 0), rival(Mode::Broadcast, 0);
  InvariantChecker checker;
  std::vector<Protocol*> protocols{checker.tap(faulted), checker.tap(rival)};
  FaultEngine engine(2, 1, Rng(2));
  engine.add(0, kind, 2, 6);
  NetworkOptions opt;
  opt.seed = 99;
  opt.testonly_fault_mutation = mutation;
  Network net(assignment, protocols, opt);
  net.set_fault_engine(&engine);
  checker.attach(net);
  for (int s = 0; s < 8; ++s) net.step();
  return !checker.ok();
}

TEST(FaultOracle, EachTestonlyMutationIsCaught) {
  EXPECT_TRUE(oracle_catches(TestonlyFaultMutation::ChurnActs,
                             FaultKind::Churn, Mode::Broadcast));
  EXPECT_TRUE(oracle_catches(TestonlyFaultMutation::MuteTransmits,
                             FaultKind::Mute, Mode::Broadcast));
  EXPECT_TRUE(oracle_catches(TestonlyFaultMutation::BabbleIdles,
                             FaultKind::Babble, Mode::Idle));
  EXPECT_TRUE(oracle_catches(TestonlyFaultMutation::KeepDroppedFeedback,
                             FaultKind::FeedbackDrop, Mode::Broadcast));
  EXPECT_TRUE(oracle_catches(TestonlyFaultMutation::DeafHears,
                             FaultKind::Deaf, Mode::Listen));
}

TEST(FaultOracle, UnmutatedRigsAreClean) {
  const FaultKind kinds[] = {FaultKind::Churn, FaultKind::Mute,
                             FaultKind::Babble, FaultKind::FeedbackDrop,
                             FaultKind::Deaf};
  for (const FaultKind kind : kinds)
    EXPECT_FALSE(oracle_catches(TestonlyFaultMutation::None, kind,
                                Mode::Broadcast))
        << to_string(kind);
}

}  // namespace
}  // namespace cogradio
