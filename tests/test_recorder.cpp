// Tests for execution recording and deterministic replay (sim/recorder.h).
#include "sim/recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/cogcast.h"
#include "core/cogcomp.h"
#include "core/consensus.h"
#include "core/gossip.h"
#include "core/multihop_cast.h"
#include "core/multihop_converge.h"
#include "core/runtime.h"
#include "core/verified_broadcast.h"
#include "sim/assignment.h"
#include "sim/topology.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

void run_cogcast_recorded(ExecutionRecorder& rec, std::uint64_t seed) {
  SharedCoreAssignment assignment(10, 6, 2, LabelMode::LocalRandom, Rng(3));
  Rng seeder(seed);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < 10; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, 6, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  NetworkOptions opt;
  opt.seed = seed + 7;
  Network net(assignment, protocols, opt);
  rec.attach(net);
  net.run(10'000);
}

TEST(Recorder, CapturesParticipatingNodes) {
  ExecutionRecorder rec;
  run_cogcast_recorded(rec, 1);
  ASSERT_FALSE(rec.log().empty());
  for (const auto& a : rec.log()) {
    EXPECT_NE(a.mode, Mode::Idle);
    EXPECT_GE(a.node, 0);
    EXPECT_LT(a.node, 10);
    EXPECT_GE(a.channel, 0);
  }
}

TEST(Recorder, SameSeedIdenticalLog) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    run_cogcast_recorded(rec, 42);
  }));
}

TEST(Recorder, DifferentSeedsDiverge) {
  ExecutionRecorder a, b;
  run_cogcast_recorded(a, 1);
  run_cogcast_recorded(b, 2);
  EXPECT_NE(ExecutionRecorder::first_divergence(a.log(), b.log()), -1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Recorder, FingerprintStableForEqualLogs) {
  ExecutionRecorder a, b;
  run_cogcast_recorded(a, 9);
  run_cogcast_recorded(b, 9);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Recorder, SerializeParseRoundTrip) {
  ExecutionRecorder rec;
  run_cogcast_recorded(rec, 5);
  const auto parsed = ExecutionRecorder::parse(rec.serialize());
  EXPECT_EQ(ExecutionRecorder::first_divergence(rec.log(), parsed), -1);
}

TEST(Recorder, ParseRejectsGarbage) {
  EXPECT_THROW(ExecutionRecorder::parse("1 2 X"), std::invalid_argument);
  EXPECT_THROW(ExecutionRecorder::parse("1 2 Q 3 0 0"), std::invalid_argument);
}

TEST(Recorder, FirstDivergencePinpointsTheSlot) {
  std::vector<RecordedAction> a{{1, 0, Mode::Listen, 2, false, false},
                                {2, 0, Mode::Broadcast, 1, false, true}};
  auto b = a;
  EXPECT_EQ(ExecutionRecorder::first_divergence(a, b), -1);
  b[1].channel = 3;
  EXPECT_EQ(ExecutionRecorder::first_divergence(a, b), 1);
  b.pop_back();
  EXPECT_EQ(ExecutionRecorder::first_divergence(a, b), 1);
}

TEST(Recorder, CogCompReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    SharedCoreAssignment assignment(12, 6, 2, LabelMode::LocalRandom, Rng(8));
    const CogCompParams params{12, 6, 2, 4.0};
    Rng seeder(11);
    std::vector<std::unique_ptr<CogCompNode>> nodes;
    std::vector<Protocol*> protocols;
    const auto values = make_values(12, 4);
    for (NodeId u = 0; u < 12; ++u) {
      nodes.push_back(std::make_unique<CogCompNode>(
          u, params, u == 0, values[static_cast<std::size_t>(u)],
          Aggregator(AggOp::Sum), seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.seed = 21;
    Network net(assignment, protocols, opt);
    rec.attach(net);
    net.run(params.max_slots());
  }));
}

// Determinism coverage for every remaining protocol in the repository:
// each workload below builds its network from explicit seeds only, so two
// executions must produce identical action logs.

TEST(Recorder, GossipReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    SharedCoreAssignment assignment(10, 5, 2, LabelMode::LocalRandom, Rng(6));
    Rng seeder(13);
    std::vector<std::unique_ptr<GossipNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < 10; ++u) {
      nodes.push_back(std::make_unique<GossipNode>(
          u, 5, 10, static_cast<Value>(u) + 1,
          seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.seed = 29;
    Network net(assignment, protocols, opt);
    rec.attach(net);
    net.run(20'000);
  }));
}

TEST(Recorder, VerifiedBroadcastReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    const VerifiedBroadcastParams params{10, 5, 2, 4.0};
    SharedCoreAssignment assignment(10, 5, 2, LabelMode::LocalRandom, Rng(7));
    Rng seeder(17);
    std::vector<std::unique_ptr<VerifiedBroadcastNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < 10; ++u) {
      nodes.push_back(std::make_unique<VerifiedBroadcastNode>(
          u, params, u == 0, data_msg(),
          seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.seed = 31;
    Network net(assignment, protocols, opt);
    rec.attach(net);
    net.run(params.max_slots());
  }));
}

TEST(Recorder, ConsensusReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    const ConsensusParams params{10, 5, 2, 4.0};
    SharedCoreAssignment assignment(10, 5, 2, LabelMode::LocalRandom, Rng(9));
    const auto proposals = make_values(10, 3, 0, 99);
    Rng seeder(23);
    std::vector<std::unique_ptr<CogConsensusNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < 10; ++u) {
      nodes.push_back(std::make_unique<CogConsensusNode>(
          u, params, u == 0, proposals[static_cast<std::size_t>(u)],
          min_consensus(), seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.seed = 37;
    Network net(assignment, protocols, opt);
    rec.attach(net);
    net.run(params.max_slots());
  }));
}

TEST(Recorder, MultihopCastReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    const Topology topo = Topology::ring(12);
    SharedCoreAssignment assignment(12, 4, 2, LabelMode::LocalRandom, Rng(5));
    const int levels =
        MultihopCastNode::suggested_decay_levels(topo.max_degree());
    Rng seeder(19);
    std::vector<std::unique_ptr<MultihopCastNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < 12; ++u) {
      nodes.push_back(std::make_unique<MultihopCastNode>(
          u, 4, u == 0, data_msg(), levels,
          seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    MultihopNetwork net(assignment, topo, protocols, 41);
    rec.attach(net);
    net.run(5'000);
  }));
}

TEST(Recorder, MultihopConvergeReplaysDeterministically) {
  EXPECT_TRUE(verify_replay([](ExecutionRecorder& rec) {
    const Topology topo = Topology::ring(10);
    SharedCoreAssignment assignment(10, 4, 2, LabelMode::LocalRandom, Rng(3));
    MultihopConvergeParams params;
    params.n = 10;
    params.c = 4;
    params.max_depth = 9;
    params.decay_levels =
        MultihopCastNode::suggested_decay_levels(topo.max_degree());
    const double lg = std::log2(10.0);
    params.flood_slots = static_cast<Slot>(
        8.0 * (topo.diameter() + 1) * params.decay_levels * lg);
    params.epoch_steps = static_cast<Slot>(8.0 * params.decay_levels * lg);
    Rng seeder(27);
    std::vector<std::unique_ptr<MultihopConvergeNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < 10; ++u) {
      nodes.push_back(std::make_unique<MultihopConvergeNode>(
          u, params, u == 0, static_cast<Value>(u) * 2 + 1,
          Aggregator(AggOp::Sum), seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    MultihopNetwork net(assignment, topo, protocols, 43);
    rec.attach(net);
    net.run(params.max_slots());
  }));
}

TEST(Recorder, IdleRecordingOptIn) {
  ExecutionRecorder with_idle;
  SharedCoreAssignment assignment(4, 4, 2, LabelMode::LocalRandom, Rng(2));
  CogCastNode source(0, 4, true, data_msg(), Rng(3), /*horizon=*/2);
  CogCastNode sink1(1, 4, false, data_msg(), Rng(4), 2);
  CogCastNode sink2(2, 4, false, data_msg(), Rng(5), 2);
  CogCastNode sink3(3, 4, false, data_msg(), Rng(6), 2);
  Network net(assignment, {&source, &sink1, &sink2, &sink3});
  with_idle.attach(net, /*record_idle=*/true);
  for (int i = 0; i < 4; ++i) net.step();  // past the horizon -> idle slots
  int idles = 0;
  for (const auto& a : with_idle.log())
    if (a.mode == Mode::Idle) ++idles;
  EXPECT_GT(idles, 0);
}

}  // namespace
}  // namespace cogradio
