// Tests for the slot-level invariant oracle (sim/invariants.h): clean
// executions must pass on every collision model, and — the mutation smoke
// test — a deliberately mis-wired engine (two winners on one channel, via
// NetworkOptions::testonly_duplicate_winner) must be caught. The latter is
// what makes the oracle trustworthy: it proves the checks are live, not
// vacuously green.
#include "sim/invariants.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cogcast.h"
#include "sim/assignment.h"
#include "sim/jamming.h"
#include "util/proptest.h"

namespace cogradio {
namespace {

struct FuzzRig {
  std::unique_ptr<SharedCoreAssignment> assignment;
  std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
  std::vector<Protocol*> protocols;
  InvariantChecker checker;

  FuzzRig(int n, int c, int k, std::uint64_t seed, bool tapped = true) {
    assignment = std::make_unique<SharedCoreAssignment>(
        n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed + 1);
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(
          c, seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(tapped ? checker.tap(*nodes.back())
                                 : nodes.back().get());
    }
  }
};

TEST(InvariantChecker, CleanRunPassesEveryModel) {
  for (int variant = 0; variant < 4; ++variant) {
    FuzzRig rig(14, 4, 2, 100 + static_cast<std::uint64_t>(variant));
    NetworkOptions opt;
    opt.seed = 900 + static_cast<std::uint64_t>(variant);
    if (variant == 1) {
      opt.emulate_backoff = true;
      opt.backoff = backoff_params_for(14);
    } else if (variant == 2) {
      opt.collision = CollisionModel::AllDelivered;
    } else if (variant == 3) {
      opt.collision = CollisionModel::CollisionLoss;
    }
    Network net(*rig.assignment, rig.protocols, opt);
    rig.checker.attach(net);
    for (int s = 0; s < 300; ++s) net.step();
    EXPECT_TRUE(rig.checker.ok())
        << "variant " << variant << ": " << rig.checker.report();
    EXPECT_EQ(rig.checker.slots_checked(), 300);
    EXPECT_EQ(rig.checker.violations(), 0);
    EXPECT_TRUE(rig.checker.first_violation().empty());
  }
}

TEST(InvariantChecker, CleanRunPassesWithJammingAndFading) {
  FuzzRig rig(12, 5, 2, 7);
  NetworkOptions opt;
  opt.seed = 11;
  opt.loss_prob = 0.3;
  Network net(*rig.assignment, rig.protocols, opt);
  RandomJammer jammer(12, rig.assignment->total_channels(), 2, Rng(5));
  net.set_jammer(&jammer);
  rig.checker.attach(net);
  for (int s = 0; s < 300; ++s) net.step();
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.report();
}

TEST(InvariantChecker, WorksUntappedOnRealProtocols) {
  // Without taps the structural + accounting checks still run (delivery
  // semantics need the taps); a real protocol run must pass them.
  SharedCoreAssignment assignment(10, 6, 2, LabelMode::LocalRandom, Rng(3));
  Message payload;
  payload.type = MessageType::Data;
  Rng seeder(5);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < 10; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, 6, u == 0, payload, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  InvariantChecker checker;
  checker.attach(net);
  net.run(10'000);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.slots_checked(), 0);
}

TEST(InvariantChecker, MutationSmokeCatchesDuplicateWinner) {
  // One channel, many always-broadcasting-ish nodes: contention every few
  // slots, so the mis-wiring fires quickly.
  FuzzRig rig(10, 1, 1, 42);
  NetworkOptions opt;
  opt.seed = 77;
  opt.testonly_duplicate_winner = true;
  Network net(*rig.assignment, rig.protocols, opt);
  rig.checker.attach(net);
  for (int s = 0; s < 100; ++s) net.step();
  ASSERT_FALSE(rig.checker.ok())
      << "mutation not detected: the oracle is vacuous";
  EXPECT_GT(rig.checker.violations(), 0);
  // The primary symptom must be the model violation itself.
  EXPECT_NE(rig.checker.first_violation().find("winner"), std::string::npos)
      << rig.checker.first_violation();
  EXPECT_NE(rig.checker.report().find("slot "), std::string::npos);
}

TEST(InvariantChecker, MutationCaughtWithoutTapsToo) {
  FuzzRig rig(10, 1, 1, 43, /*tapped=*/false);
  NetworkOptions opt;
  opt.seed = 78;
  opt.testonly_duplicate_winner = true;
  Network net(*rig.assignment, rig.protocols, opt);
  rig.checker.attach(net);
  for (int s = 0; s < 100; ++s) net.step();
  EXPECT_FALSE(rig.checker.ok());
}

TEST(InvariantChecker, CleanShardedRunPassesWithDeltaConservation) {
  // Sharded resolve exposes per-shard deltas; rule F must hold on a clean
  // run (and the deltas must actually be present — the rule is live).
  FuzzRig rig(24, 6, 2, 9);
  NetworkOptions opt;
  opt.seed = 13;
  opt.loss_prob = 0.25;
  opt.shards = 4;
  Network net(*rig.assignment, rig.protocols, opt);
  rig.checker.attach(net);
  for (int s = 0; s < 300; ++s) net.step();
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.report();
  EXPECT_EQ(net.last_shard_deltas().size(), 4u);
}

TEST(InvariantChecker, MutationCatchesShardMergeSkew) {
  // The skewed merge reverses shard order and drops all but one shard's
  // delivery delta — the shard-delta conservation rule (and nothing about
  // the per-node ledgers, which the shards still write correctly) must
  // flag it. Plenty of channels so deliveries land in more than one shard.
  FuzzRig rig(24, 6, 2, 44);
  NetworkOptions opt;
  opt.seed = 79;
  opt.shards = 4;
  opt.testonly_shard_merge_skew = true;
  // Fading turns the generic deliveries-delta check into an envelope the
  // lost update hides inside — only the conservation rule sees through it.
  opt.loss_prob = 0.25;
  Network net(*rig.assignment, rig.protocols, opt);
  rig.checker.attach(net);
  for (int s = 0; s < 100; ++s) net.step();
  ASSERT_FALSE(rig.checker.ok())
      << "shard-merge skew not detected: rule F is vacuous";
  EXPECT_NE(rig.checker.first_violation().find("shard merge"),
            std::string::npos)
      << rig.checker.first_violation();
}

TEST(InvariantChecker, FingerprintMatchesAcrossEngines) {
  // Oblivious traffic: identical action streams on the plain and
  // backoff-emulating engines for the same seeds (winner coins differ,
  // but the fingerprint excludes them by design).
  std::uint64_t fp[2] = {0, 0};
  for (int engine = 0; engine < 2; ++engine) {
    FuzzRig rig(12, 4, 2, 55);
    NetworkOptions opt;
    opt.seed = 66;
    if (engine == 1) {
      opt.emulate_backoff = true;
      opt.backoff = backoff_params_for(12);
    }
    Network net(*rig.assignment, rig.protocols, opt);
    rig.checker.attach(net);
    for (int s = 0; s < 200; ++s) net.step();
    ASSERT_TRUE(rig.checker.ok()) << rig.checker.report();
    fp[engine] = rig.checker.action_fingerprint();
  }
  EXPECT_EQ(fp[0], fp[1]);
}

TEST(InvariantChecker, PartialTapSetIsRejected) {
  FuzzRig rig(4, 2, 1, 3, /*tapped=*/false);
  // Tap only half the nodes: attach must refuse the partial set.
  rig.protocols[0] = rig.checker.tap(*rig.nodes[0]);
  rig.protocols[1] = rig.checker.tap(*rig.nodes[1]);
  Network net(*rig.assignment, rig.protocols);
  EXPECT_THROW(rig.checker.attach(net), std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
