# Determinism check for `cograd bench`: the merged manifest must be
# byte-identical no matter how many sweep workers produced it (the
# util/sweep.h contract, exercised end to end through the smoke suite).
#
# Invoked by ctest as:
#   cmake -DCOGRAD=<path-to-cograd> -P bench_jobs_diff.cmake
foreach(jobs 1 4)
  execute_process(
    COMMAND ${COGRAD} bench --jobs ${jobs} --out BENCH_jobs${jobs}.json
    RESULT_VARIABLE result
    OUTPUT_QUIET)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "cograd bench --jobs ${jobs} failed (${result})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files BENCH_jobs1.json BENCH_jobs4.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "BENCH_all.json differs between --jobs 1 and --jobs 4")
endif()
