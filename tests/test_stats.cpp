// Unit tests for the statistics toolkit (util/stats.h).
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cogradio {
namespace {

TEST(Summarize, EmptySampleIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v{7.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.median, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, ClampsQ) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 2.0);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{5, 7, 9, 11};  // y = 3 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLinear, NoisyLineHasReasonableR2) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.05);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitLinear, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  const std::vector<double> one{1.0};
  EXPECT_EQ(fit_linear(one, one).slope, 0.0);
  // Vertical data (all same x) must not divide by zero.
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(fit_linear(x, y).slope, 0.0);
}

TEST(FitPower, RecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 16; ++i) {
    x.push_back(i);
    y.push_back(3.0 * std::pow(i, 1.7));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 1.7, 1e-6);
  EXPECT_NEAR(f.coefficient, 3.0, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitPower, LinearDataHasExponentOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i);
  }
  EXPECT_NEAR(fit_power(x, y).exponent, 1.0, 1e-9);
}

TEST(ToDoubles, Converts) {
  const std::vector<std::int64_t> in{1, 2, 3};
  const auto out = to_doubles(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(SafeRatio, GuardsZeroDenominator) {
  EXPECT_DOUBLE_EQ(safe_ratio(4, 2), 2.0);
  EXPECT_DOUBLE_EQ(safe_ratio(4, 0), 0.0);
}

}  // namespace
}  // namespace cogradio
