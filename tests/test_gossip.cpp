// Tests for all-to-all gossip (core/gossip.h).
#include "core/gossip.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "core/runtime.h"

namespace cogradio {
namespace {

using Param = std::tuple<std::string, int, int, int>;

class GossipSweep : public ::testing::TestWithParam<Param> {};

TEST_P(GossipSweep, EveryoneLearnsEverything) {
  const auto& [pattern, n, c, k] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    auto assignment =
        make_assignment(pattern, n, c, k, LabelMode::LocalRandom, Rng(seed));
    const auto values = make_values(n, seed ^ 0x60551F, -99, 99);
    GossipConfig config;
    config.seed = seed * 17;
    const GossipOutcome out = run_gossip(*assignment, values, config);
    ASSERT_TRUE(out.completed) << pattern << " n=" << n << " seed=" << seed;
    for (Slot s : out.completed_slot) {
      EXPECT_GE(s, 0);
      EXPECT_LE(s, out.slots);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GossipSweep,
    ::testing::Values(Param{"shared-core", 12, 6, 2},
                      Param{"partitioned", 10, 5, 2},
                      Param{"pigeonhole", 16, 8, 4},
                      Param{"dynamic-shared-core", 10, 6, 3}),
    [](const auto& info) {
      std::string p = std::get<0>(info.param);
      for (auto& ch : p)
        if (ch == '-') ch = '_';
      return p + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(Gossip, RumorValuesArriveIntact) {
  const int n = 8, c = 5, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  const auto values = make_values(n, 7, 0, 1000);
  Rng seeder(9);
  std::vector<std::unique_ptr<GossipNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<GossipNode>(
        u, c, n, values[static_cast<std::size_t>(u)],
        seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  net.run(1'000'000);
  ASSERT_TRUE(net.all_done());
  for (const auto& node : nodes) {
    ASSERT_EQ(node->rumors().size(), static_cast<std::size_t>(n));
    std::set<NodeId> origins;
    for (const auto& [origin, value] : node->rumors()) {
      origins.insert(origin);
      EXPECT_EQ(value, values[static_cast<std::size_t>(origin)])
          << "rumor corrupted in transit";
    }
    EXPECT_EQ(origins.size(), static_cast<std::size_t>(n));
  }
}

TEST(Gossip, SingleNodeIsInstantlyDone) {
  IdentityAssignment assignment(1, 3, LabelMode::Global, Rng(1));
  const std::vector<Value> values{5};
  const auto out = run_gossip(assignment, values, {});
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0);
}

TEST(Gossip, KnownCountMonotone) {
  GossipNode node(0, 4, 5, 10, Rng(2));
  EXPECT_EQ(node.known_count(), 1);
  EXPECT_TRUE(node.knows(0));
  EXPECT_FALSE(node.knows(3));
}

TEST(Gossip, MismatchedValuesRejected) {
  IdentityAssignment assignment(3, 3, LabelMode::Global, Rng(1));
  const std::vector<Value> two{1, 2};
  EXPECT_THROW(run_gossip(assignment, two, {}), std::invalid_argument);
}

TEST(Gossip, CompletionScalesGentlyWithN) {
  // Sanity: doubling n should not blow completion up by more than ~4x at
  // fixed (c, k) — set-merging gossip converges in O(polylog) meetings.
  auto median_for = [](int n) {
    std::vector<double> samples;
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      SharedCoreAssignment assignment(n, 6, 2, LabelMode::LocalRandom,
                                      Rng(seed));
      const auto values = make_values(n, seed);
      GossipConfig config;
      config.seed = seed * 3;
      const auto out = run_gossip(assignment, values, config);
      EXPECT_TRUE(out.completed);
      samples.push_back(static_cast<double>(out.slots));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  const double m16 = median_for(16);
  const double m32 = median_for(32);
  EXPECT_LT(m32, 4.0 * m16 + 20.0);
}

}  // namespace
}  // namespace cogradio
