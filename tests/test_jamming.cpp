// Tests for the n-uniform jamming adversaries (Theorem 18 substrate).
#include "sim/jamming.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/assignment.h"

namespace cogradio {
namespace {

TEST(BudgetedJammer, BudgetValidation) {
  EXPECT_THROW(RandomJammer(2, 4, 4, Rng(1)), std::invalid_argument);
  EXPECT_THROW(RandomJammer(2, 4, -1, Rng(1)), std::invalid_argument);
  EXPECT_THROW(RandomJammer(0, 4, 1, Rng(1)), std::invalid_argument);
}

TEST(RandomJammer, RespectsBudgetEachSlot) {
  RandomJammer jam(5, 10, 3, Rng(2));
  for (Slot t = 1; t <= 50; ++t) {
    jam.begin_slot(t);
    for (NodeId u = 0; u < 5; ++u) {
      const auto& set = jam.jam_set(u);
      EXPECT_EQ(set.size(), 3u);
      std::set<Channel> unique(set.begin(), set.end());
      EXPECT_EQ(unique.size(), 3u);
      for (Channel ch : set) {
        EXPECT_TRUE(jam.is_jammed(u, ch));
        EXPECT_GE(ch, 0);
        EXPECT_LT(ch, 10);
      }
    }
  }
}

TEST(RandomJammer, ZeroBudgetJamsNothing) {
  RandomJammer jam(3, 5, 0, Rng(3));
  jam.begin_slot(1);
  for (NodeId u = 0; u < 3; ++u)
    for (Channel ch = 0; ch < 5; ++ch) EXPECT_FALSE(jam.is_jammed(u, ch));
}

TEST(RandomJammer, PairwiseUnjammedOverlapAtLeastCMinus2K) {
  // The Theorem 18 accounting: with per-node budget k over c channels,
  // every pair keeps >= c - 2k mutually clear channels.
  const int c = 12, k = 4;
  RandomJammer jam(6, c, k, Rng(4));
  for (Slot t = 1; t <= 30; ++t) {
    jam.begin_slot(t);
    for (NodeId u = 0; u < 6; ++u)
      for (NodeId v = u + 1; v < 6; ++v) {
        int clear = 0;
        for (Channel ch = 0; ch < c; ++ch)
          if (!jam.is_jammed(u, ch) && !jam.is_jammed(v, ch)) ++clear;
        EXPECT_GE(clear, c - 2 * k);
      }
  }
}

TEST(SweepJammer, WindowAdvancesWithSlots) {
  SweepJammer jam(2, 8, 2);
  jam.begin_slot(1);
  EXPECT_TRUE(jam.is_jammed(0, 0));
  EXPECT_TRUE(jam.is_jammed(0, 1));
  EXPECT_FALSE(jam.is_jammed(0, 2));
  jam.begin_slot(2);
  EXPECT_FALSE(jam.is_jammed(0, 0));
  EXPECT_TRUE(jam.is_jammed(0, 1));
  EXPECT_TRUE(jam.is_jammed(0, 2));
  jam.begin_slot(8);  // wraps: base = 7, window {7, 0}
  EXPECT_TRUE(jam.is_jammed(1, 7));
  EXPECT_TRUE(jam.is_jammed(1, 0));
}

TEST(ReactiveJammer, JamsRecentlyObservedChannels) {
  ReactiveJammer jam(2, 8, 2);
  jam.begin_slot(1);
  EXPECT_FALSE(jam.is_jammed(0, 3));  // no history yet

  const std::vector<Channel> used1{3, 5};
  jam.observe(1, used1);
  jam.begin_slot(2);
  EXPECT_TRUE(jam.is_jammed(0, 3));
  EXPECT_TRUE(jam.is_jammed(1, 5));
  EXPECT_FALSE(jam.is_jammed(0, 5));  // per-node history

  // Budget 2: after observing channels 4 then 6 for node 0, channel 3
  // falls out of the window.
  const std::vector<Channel> used2{4, kNoChannel};
  const std::vector<Channel> used3{6, kNoChannel};
  jam.observe(2, used2);
  jam.observe(3, used3);
  jam.begin_slot(4);
  EXPECT_TRUE(jam.is_jammed(0, 6));
  EXPECT_TRUE(jam.is_jammed(0, 4));
  EXPECT_FALSE(jam.is_jammed(0, 3));
}

TEST(ReactiveJammer, RepeatedChannelDoesNotDuplicate) {
  ReactiveJammer jam(1, 4, 2);
  const std::vector<Channel> used{2};
  jam.observe(1, used);
  jam.observe(2, used);
  jam.begin_slot(3);
  EXPECT_EQ(jam.jam_set(0).size(), 1u);
}

// A fixed "jam channel 0 for node 1" adversary for cut-off semantics.
class PinpointJammer : public Jammer {
 public:
  void begin_slot(Slot) override {}
  bool is_jammed(NodeId node, Channel channel) const override {
    return node == 1 && channel == 0;
  }
};

TEST(NetworkJamming, JammedNodeIsCutOff) {
  class Beacon : public Protocol {
   public:
    explicit Beacon(bool talk) : talk_(talk) {}
    Action on_slot(Slot) override {
      if (talk_) {
        Message m;
        m.type = MessageType::Data;
        return Action::broadcast(0, m);
      }
      return Action::listen(0);
    }
    void on_feedback(Slot, const SlotResult& r) override {
      jammed = r.jammed;
      heard = !r.received.empty();
      won = r.tx_success;
    }
    bool done() const override { return true; }
    bool talk_;
    bool jammed = false;
    bool heard = false;
    bool won = false;
  };

  IdentityAssignment assignment(3, 2, LabelMode::Global, Rng(5));
  Beacon talker(true), jammed_listener(false), clear_listener(false);
  Network net(assignment, {&talker, &jammed_listener, &clear_listener});
  PinpointJammer jammer;
  net.set_jammer(&jammer);
  net.step();
  EXPECT_TRUE(talker.won);
  EXPECT_TRUE(jammed_listener.jammed);
  EXPECT_FALSE(jammed_listener.heard);
  EXPECT_TRUE(clear_listener.heard);
  EXPECT_EQ(net.stats().jammed_node_slots, 1);
}

TEST(NetworkJamming, JammedBroadcasterTransmitsNothing) {
  class Beacon : public Protocol {
   public:
    explicit Beacon(bool talk) : talk_(talk) {}
    Action on_slot(Slot) override {
      if (talk_) {
        Message m;
        m.type = MessageType::Data;
        return Action::broadcast(0, m);
      }
      return Action::listen(0);
    }
    void on_feedback(Slot, const SlotResult& r) override {
      jammed = r.jammed;
      heard = !r.received.empty();
      attempted = r.tx_attempted;
    }
    bool done() const override { return true; }
    bool talk_;
    bool jammed = false;
    bool heard = false;
    bool attempted = false;
  };

  class JamNodeZero : public Jammer {
   public:
    void begin_slot(Slot) override {}
    bool is_jammed(NodeId node, Channel) const override { return node == 0; }
  };

  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(6));
  Beacon talker(true), listener(false);
  Network net(assignment, {&talker, &listener});
  JamNodeZero jammer;
  net.set_jammer(&jammer);
  net.step();
  EXPECT_TRUE(talker.jammed);
  EXPECT_FALSE(talker.attempted);
  EXPECT_FALSE(listener.heard);
}

}  // namespace
}  // namespace cogradio
