// Unit + property tests for aggregation payloads and combiners.
#include "agg/aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace cogradio {
namespace {

TEST(AggOp, ParseRoundTrip) {
  for (AggOp op : {AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Count,
                   AggOp::CollectAll})
    EXPECT_EQ(parse_agg_op(to_string(op)), op);
  EXPECT_THROW(parse_agg_op("median"), std::invalid_argument);
}

TEST(Aggregator, LeafSum) {
  Aggregator agg(AggOp::Sum);
  const AggPayload p = agg.leaf(3, 42);
  EXPECT_EQ(p.combined, 42);
  EXPECT_EQ(p.count, 1);
  EXPECT_TRUE(p.items.empty());
}

TEST(Aggregator, LeafCollect) {
  Aggregator agg(AggOp::CollectAll);
  const AggPayload p = agg.leaf(3, 42);
  ASSERT_EQ(p.items.size(), 1u);
  EXPECT_EQ(p.items[0].first, 3);
  EXPECT_EQ(p.items[0].second, 42);
}

TEST(Aggregator, MergeSum) {
  Aggregator agg(AggOp::Sum);
  AggPayload a = agg.leaf(0, 10);
  agg.merge(a, agg.leaf(1, 32));
  EXPECT_EQ(a.combined, 42);
  EXPECT_EQ(a.count, 2);
}

TEST(Aggregator, MergeMinMax) {
  Aggregator mn(AggOp::Min), mx(AggOp::Max);
  AggPayload a = mn.leaf(0, 10);
  mn.merge(a, mn.leaf(1, -5));
  EXPECT_EQ(a.combined, -5);
  AggPayload b = mx.leaf(0, 10);
  mx.merge(b, mx.leaf(1, -5));
  EXPECT_EQ(b.combined, 10);
}

TEST(Aggregator, CountIgnoresValues) {
  Aggregator agg(AggOp::Count);
  AggPayload a = agg.leaf(0, 999);
  agg.merge(a, agg.leaf(1, -999));
  EXPECT_EQ(a.combined, 2);
  EXPECT_EQ(agg.result(a), 2);
}

TEST(Aggregator, CollectResultSumsItems) {
  Aggregator agg(AggOp::CollectAll);
  AggPayload a = agg.leaf(0, 5);
  agg.merge(a, agg.leaf(1, 7));
  EXPECT_EQ(agg.result(a), 12);
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(a.items.size(), 2u);
}

TEST(Aggregator, ExpectedMatchesManualFold) {
  const std::vector<Value> values{3, -1, 7, 7, 0};
  EXPECT_EQ(Aggregator(AggOp::Sum).expected(values), 16);
  EXPECT_EQ(Aggregator(AggOp::Min).expected(values), -1);
  EXPECT_EQ(Aggregator(AggOp::Max).expected(values), 7);
  EXPECT_EQ(Aggregator(AggOp::Count).expected(values), 5);
  EXPECT_EQ(Aggregator(AggOp::CollectAll).expected(values), 16);
}

TEST(PayloadSize, AssociativeIsConstantCollectIsLinear) {
  Aggregator sum(AggOp::Sum), col(AggOp::CollectAll);
  AggPayload s = sum.leaf(0, 1);
  AggPayload c = col.leaf(0, 1);
  for (NodeId i = 1; i < 100; ++i) {
    sum.merge(s, sum.leaf(i, 1));
    col.merge(c, col.leaf(i, 1));
  }
  EXPECT_EQ(payload_size_words(s), 2u);
  EXPECT_EQ(payload_size_words(c), 2u + 2u * 100u);
}

// Property: merging in any order and any tree shape yields the same result
// (associativity + commutativity), for every op.
class AggregatorProperty : public ::testing::TestWithParam<AggOp> {};

TEST_P(AggregatorProperty, OrderAndShapeInvariance) {
  const Aggregator agg(GetParam());
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(30));
    std::vector<Value> values;
    for (int i = 0; i < n; ++i) values.push_back(rng.between(-100, 100));

    // Left fold.
    AggPayload left = agg.leaf(0, values[0]);
    for (int i = 1; i < n; ++i) agg.merge(left, agg.leaf(i, values[static_cast<std::size_t>(i)]));

    // Random binary-tree fold over a shuffled order.
    std::vector<AggPayload> parts;
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    for (int i : order) parts.push_back(agg.leaf(i, values[static_cast<std::size_t>(i)]));
    while (parts.size() > 1) {
      const auto a = rng.below(parts.size());
      auto b = rng.below(parts.size());
      while (b == a) b = rng.below(parts.size());
      agg.merge(parts[a], parts[b]);
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(b));
    }

    EXPECT_EQ(agg.result(left), agg.result(parts.front()));
    EXPECT_EQ(left.count, parts.front().count);
    EXPECT_EQ(agg.result(left), agg.expected(values));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AggregatorProperty,
                         ::testing::Values(AggOp::Sum, AggOp::Min, AggOp::Max,
                                           AggOp::Count, AggOp::CollectAll),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace cogradio
