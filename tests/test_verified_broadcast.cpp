// Tests for verified broadcast (core/verified_broadcast.h): the CogComp
// certificate over CogCast's outcome.
#include "core/verified_broadcast.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/assignment.h"
#include "sim/fault.h"
#include "sim/network.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  m.a = 7;
  return m;
}

struct Run {
  std::vector<std::unique_ptr<VerifiedBroadcastNode>> nodes;
  std::vector<std::unique_ptr<OutageFault>> outages;
  Slot slots = 0;
  bool all_done = false;
};

Run run_verified(int n, int c, int k, std::uint64_t seed,
                 int nodes_missing_broadcast = 0) {
  Run run;
  const VerifiedBroadcastParams params{n, c, k, 4.0};
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed * 11 + 1);
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    run.nodes.push_back(std::make_unique<VerifiedBroadcastNode>(
        u, params, u == 0, data_msg(),
        seeder.split(static_cast<std::uint64_t>(u))));
    // Sabotage: the last `nodes_missing_broadcast` nodes sleep through the
    // entire broadcast phase, then rejoin for the verification round.
    if (u >= n - nodes_missing_broadcast) {
      run.outages.push_back(std::make_unique<OutageFault>(
          *run.nodes.back(), 1, params.broadcast_end() + 1));
      protocols.push_back(run.outages.back().get());
    } else {
      protocols.push_back(run.nodes.back().get());
    }
  }
  NetworkOptions opt;
  opt.seed = seed + 3;
  Network network(assignment, protocols, opt);
  run.slots = network.run(params.max_slots());
  run.all_done = network.all_done();
  return run;
}

TEST(VerifiedBroadcast, CertifiesACompleteBroadcast) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto run = run_verified(16, 6, 2, seed);
    ASSERT_TRUE(run.all_done) << "seed " << seed;
    EXPECT_TRUE(run.nodes[0]->verified()) << "seed " << seed;
    EXPECT_EQ(run.nodes[0]->certified_informed(), 16);
    for (const auto& node : run.nodes) EXPECT_TRUE(node->informed());
  }
}

TEST(VerifiedBroadcast, CountsMissedNodesExactly) {
  // Three nodes sleep through the broadcast; the certificate must say
  // exactly n-3 and verification must fail.
  const int n = 16, missing = 3;
  const auto run = run_verified(n, 6, 2, 5, missing);
  ASSERT_TRUE(run.all_done);
  EXPECT_FALSE(run.nodes[0]->verified());
  EXPECT_EQ(run.nodes[0]->certified_informed(), n - missing);
}

TEST(VerifiedBroadcast, StaysWithinTheFixedBudget) {
  const VerifiedBroadcastParams params{20, 8, 2, 4.0};
  const auto run = run_verified(20, 8, 2, 9);
  ASSERT_TRUE(run.all_done);
  EXPECT_LE(run.slots, params.max_slots());
  EXPECT_GT(run.slots, params.broadcast_end());
}

TEST(VerifiedBroadcast, PayloadSurvivesTheComposition) {
  const auto run = run_verified(10, 6, 3, 13);
  ASSERT_TRUE(run.all_done);
  for (const auto& node : run.nodes) EXPECT_EQ(node->payload().a, 7);
}

TEST(VerifiedBroadcast, NonSourceNodesReportNothing) {
  const auto run = run_verified(8, 6, 2, 17);
  ASSERT_TRUE(run.all_done);
  EXPECT_FALSE(run.nodes[3]->verified());
  EXPECT_EQ(run.nodes[3]->certified_informed(), 0);
}

}  // namespace
}  // namespace cogradio
