// Unit tests for the table printer and CLI flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/table.h"

namespace cogradio {
namespace {

TEST(Table, AlignsColumnsAndPrintsRule) {
  Table t({"c", "slots"});
  t.add_row({"16", "1234"});
  t.add_row({"256", "9"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("c  slots"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find(" 16   1234"), std::string::npos);
  EXPECT_NE(out.find("256      9"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--n=64", "--gamma=2.5", "--mode=fast"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0), 2.5);
  EXPECT_EQ(args.get_string("mode", ""), "fast");
  args.finish();
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--n", "128", "--label", "abc"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_EQ(args.get_string("label", ""), "abc");
  args.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(args.get_flag("verbose"));
  args.finish();
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose", "--quiet=false"};
  CliArgs args(3, argv);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  args.finish();
}

TEST(Cli, NegativeNumbersViaEquals) {
  const char* argv[] = {"prog", "--lo=-5"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("lo", 0), -5);
  args.finish();
}

TEST(CliDeath, UnrecognizedFlagAborts) {
  const char* argv[] = {"prog", "--trails=5"};  // typo for --trials
  CliArgs args(2, argv);
  (void)args.get_int("trials", 1);
  EXPECT_EXIT(args.finish(), ::testing::ExitedWithCode(2), "unrecognized");
}

TEST(CliDeath, MalformedIntegerAborts) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int("n", 1), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(CliDeath, NonFlagTokenAborts) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_EXIT(CliArgs(2, argv), ::testing::ExitedWithCode(2), "expected");
}

TEST(CliDeath, IntegerOverflowAborts) {
  // strtoll saturates on overflow; the parser must detect ERANGE instead
  // of silently returning INT64_MAX.
  const char* argv[] = {"prog", "--trials=99999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int("trials", 1), ::testing::ExitedWithCode(2),
              "out of range");
}

TEST(CliDeath, IntegerUnderflowAborts) {
  const char* argv[] = {"prog", "--lo=-99999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int("lo", 0), ::testing::ExitedWithCode(2),
              "out of range");
}

TEST(Cli, ShardsFlagParsesAndDefaults) {
  {
    const char* argv[] = {"prog", "--shards=16"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.get_shards(), 16);
  }
  {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.get_shards(), 1);
    EXPECT_EQ(args.get_shards(/*def=*/8), 8);
  }
  {
    // def = 0 is the "unset means caller decides" form (`cograd check`
    // resolves 0 to the scenario's drawn count) — it must admit both the
    // default and an explicit --shards 0.
    const char* argv[] = {"prog", "--shards=0"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.get_shards(/*def=*/0), 0);
  }
}

TEST(CliDeath, ShardsZeroAborts) {
  const char* argv[] = {"prog", "--shards=0"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_shards(), ::testing::ExitedWithCode(2),
              "shard count in \\[1, 4096\\], got 0");
}

TEST(CliDeath, ShardsNegativeAborts) {
  const char* argv[] = {"prog", "--shards=-3"};
  CliArgs args(2, argv);
  // Negative counts are rejected even on the def = 0 (check) path.
  EXPECT_EXIT((void)args.get_shards(/*def=*/0), ::testing::ExitedWithCode(2),
              "got -3");
}

TEST(CliDeath, ShardsAbsurdCountAborts) {
  const char* argv[] = {"prog", "--shards=5000"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_shards(), ::testing::ExitedWithCode(2),
              "shard count in \\[1, 4096\\], got 5000");
}

TEST(CliDeath, ShardsOverflowAborts) {
  // int64 overflow is diagnosed by the underlying get_int before the
  // range check ever sees it.
  const char* argv[] = {"prog", "--shards=99999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_shards(), ::testing::ExitedWithCode(2),
              "out of range");
}

TEST(CliDeath, ShardsMalformedAborts) {
  const char* argv[] = {"prog", "--shards=four"};
  CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_shards(), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(Cli, Int64ExtremesParseExactly) {
  const char* argv[] = {"prog", "--hi=9223372036854775807",
                        "--lo=-9223372036854775808"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("hi", 0), INT64_MAX);
  EXPECT_EQ(args.get_int("lo", 0), INT64_MIN);
  args.finish();
}

TEST(CliDeath, GreedyBoolSwallowedTokenDiagnosed) {
  // "--verbose out.json" binds 'out.json' to the switch; get_flag must
  // diagnose the swallowed token instead of misparsing it as true.
  const char* argv[] = {"prog", "--verbose", "out.json"};
  CliArgs args(3, argv);
  EXPECT_EXIT((void)args.get_flag("verbose"), ::testing::ExitedWithCode(2),
              "swallowed the token 'out.json'");
}

TEST(Cli, SpaceFormBooleanLiteralsAccepted) {
  const char* argv[] = {"prog", "--a", "true", "--b", "false",
                        "--c", "1",    "--d", "0"};
  CliArgs args(9, argv);
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_FALSE(args.get_flag("b"));
  EXPECT_TRUE(args.get_flag("c"));
  EXPECT_FALSE(args.get_flag("d"));
  args.finish();
}

TEST(Cli, ResolvedLogRecordsEveryQueryInOrder) {
  const char* argv[] = {"prog", "--n=64", "--gamma=2.5"};
  CliArgs args(3, argv);
  (void)args.get_int("n", 0);
  (void)args.get_double("gamma", 0);
  (void)args.get_string("pattern", "shared-core");
  (void)args.get_flag("verbose");
  args.finish();
  const auto& log = args.resolved();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].name, "n");
  EXPECT_EQ(log[0].value, "64");
  EXPECT_EQ(log[0].kind, CliArgs::ResolvedFlag::Kind::Int);
  EXPECT_EQ(log[1].name, "gamma");
  EXPECT_EQ(log[1].value, "2.5");
  EXPECT_EQ(log[1].kind, CliArgs::ResolvedFlag::Kind::Double);
  EXPECT_EQ(log[2].name, "pattern");
  EXPECT_EQ(log[2].value, "shared-core");
  EXPECT_EQ(log[2].kind, CliArgs::ResolvedFlag::Kind::String);
  EXPECT_EQ(log[3].name, "verbose");
  EXPECT_EQ(log[3].value, "false");
  EXPECT_EQ(log[3].kind, CliArgs::ResolvedFlag::Kind::Bool);
}

TEST(Cli, ResolvedLogUpdatesOnRequery) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  (void)args.get_int("n", 8);
  (void)args.get_int("n", 16);  // later default wins, no duplicate entry
  const auto& log = args.resolved();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].value, "16");
}

}  // namespace
}  // namespace cogradio
