// Tests for clock skew (sim/skew.h): the synchronization assumption made
// testable. CogCast tolerates skew; the deterministic rendezvous schedule
// demonstrably does not retain its worst-case bound.
#include "sim/skew.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/det_rendezvous.h"
#include "core/cogcast.h"
#include "sim/assignment.h"
#include "sim/network.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

class Probe : public Protocol {
 public:
  Action on_slot(Slot slot) override {
    last_local_slot = slot;
    ++calls;
    return Action::listen(0);
  }
  void on_feedback(Slot, const SlotResult&) override { ++feedbacks; }
  bool done() const override { return false; }
  Slot last_local_slot = 0;
  int calls = 0;
  int feedbacks = 0;
};

TEST(ClockSkew, ShiftsTheLocalClock) {
  Probe probe;
  ClockSkew skewed(probe, 3);
  EXPECT_EQ(skewed.on_slot(1).mode, Mode::Idle);
  EXPECT_EQ(skewed.on_slot(3).mode, Mode::Idle);
  EXPECT_EQ(probe.calls, 0);
  EXPECT_EQ(skewed.on_slot(4).mode, Mode::Listen);
  EXPECT_EQ(probe.last_local_slot, 1);
  EXPECT_EQ(skewed.on_slot(10).mode, Mode::Listen);
  EXPECT_EQ(probe.last_local_slot, 7);
}

TEST(ClockSkew, DropsFeedbackWhileDormant) {
  Probe probe;
  ClockSkew skewed(probe, 2);
  SlotResult r;
  skewed.on_feedback(1, r);
  skewed.on_feedback(2, r);
  EXPECT_EQ(probe.feedbacks, 0);
  skewed.on_feedback(3, r);
  EXPECT_EQ(probe.feedbacks, 1);
}

TEST(ClockSkew, CogCastIsStartTimeOblivious) {
  // Half the nodes start up to 30 slots late; the epidemic still informs
  // everyone.
  const int n = 14, c = 6, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed * 5 + 1);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<std::unique_ptr<ClockSkew>> skews;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
      if (u % 2 == 1) {
        skews.push_back(std::make_unique<ClockSkew>(
            *nodes.back(), static_cast<Slot>(seeder.below(30))));
        protocols.push_back(skews.back().get());
      } else {
        protocols.push_back(nodes.back().get());
      }
    }
    Network net(assignment, protocols);
    net.run(100'000);
    for (const auto& node : nodes)
      EXPECT_TRUE(node->informed()) << "seed " << seed;
  }
}

TEST(ClockSkew, DetRendezvousMeetsWithinShiftedBound) {
  // The bit-phased schedule is in fact skew-tolerant up to a shifted
  // deadline: whenever a fast/slow block pairing occurs after both nodes
  // are awake, the fast node's 1-slot cycle sweeps the slow node's 4-slot
  // dwell regardless of sub-block offset. So the meeting happens within
  // the synchronized bound counted from the LATER activation. (The only
  // adversarial block shift that removes all fast/slow pairings for a
  // pair of ids, sigma = id_bits - 1 blocks, leaves the late node dormant
  // for almost the entire window — a degenerate case.) This property test
  // checks the shifted bound across random skews and topologies.
  const int c = 4, k = 1;
  const Slot sync_bound = 20LL * c * c;  // id_bits * c^2
  Rng skew_rng(99);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    PartitionedAssignment assignment(2, c, k, LabelMode::LocalRandom,
                                     Rng(seed));
    DetRendezvousNode holder(1, c, true, data_msg());
    DetRendezvousNode seeker(2, c, false, data_msg());
    const Slot offset = static_cast<Slot>(skew_rng.below(3ULL * c * c));
    ClockSkew skewed_seeker(seeker, offset);
    Network net(assignment, {&holder, &skewed_seeker});
    net.run(offset + sync_bound);
    EXPECT_TRUE(seeker.informed())
        << "seed " << seed << " offset " << offset;
  }
}

TEST(ClockSkew, ZeroOffsetIsTransparent) {
  Probe probe;
  ClockSkew skewed(probe, 0);
  EXPECT_EQ(skewed.on_slot(1).mode, Mode::Listen);
  EXPECT_EQ(probe.last_local_slot, 1);
}

}  // namespace
}  // namespace cogradio
