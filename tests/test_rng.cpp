// Unit tests for the seeded PRNG substrate (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace cogradio {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  // Chi-square-style sanity check over 16 buckets.
  Rng rng(42);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int count : counts) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; chi2 > 60 is astronomically unlikely for a uniform source.
  EXPECT_LT(chi2, 60.0);
}

TEST(Rng, BetweenInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng parent1(99), parent2(99);
  Rng childa1 = parent1.split(1);
  Rng childa2 = parent2.split(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childa1(), childa2());

  Rng parent3(99);
  Rng child_b = parent3.split(2);
  Rng parent4(99);
  Rng child_a = parent4.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (child_a() == child_b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SampleWithoutReplacementIsASet) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(30, 12);
    ASSERT_EQ(sample.size(), 12u);
    std::set<std::int32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 12u);
    for (auto v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 30);
    }
  }
}

TEST(Rng, SampleFullUniverseIsPermutation) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleEmptyCount) {
  Rng rng(29);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleCoversUniverseUniformly) {
  // Element 0 should appear in a 5-of-20 sample about 25% of the time.
  Rng rng(31);
  int hits = 0;
  constexpr int kTrials = 20'000;
  for (int t = 0; t < kTrials; ++t) {
    const auto sample = rng.sample_without_replacement(20, 5);
    if (std::find(sample.begin(), sample.end(), 0) != sample.end()) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(41);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is 1/50! ~ 0
}

TEST(Splitmix, KnownGoodSequence) {
  // Reference values from the public-domain splitmix64 implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace cogradio
