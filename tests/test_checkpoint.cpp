// sim/checkpoint.h + serve/journal.h: the crash-consistency substrate.
//
// Covers the codec (primitive round trips, bounds checks, section tags),
// the sealed file header (magic/schema/size/checksum each rejected
// independently), the atomic file round trip, the resume-equivalence
// contract through the property harness (including the skew leg that
// proves the oracle bites), and the job journal's lifecycle records,
// torn-tail tolerance, and interior-corruption rejection.
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "serve/journal.h"
#include "util/proptest.h"

namespace cogradio {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointCodec, PrimitivesRoundTrip) {
  CheckpointWriter w;
  w.section("test");
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-3.25);
  w.boolean(true);
  std::string hostile("hello\0world", 11);  // embedded NUL, explicit length
  hostile += '\xFF';
  w.str(hostile);
  Rng rng(7);
  rng();  // advance so the state is not the seed-fresh one
  w.rng(rng);

  CheckpointReader r(w.bytes());
  r.section("test");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), hostile);
  Rng restored(1);
  r.rng(restored);
  r.expect_end();
  // The restored stream must continue exactly where the original will.
  EXPECT_EQ(restored(), rng());
  EXPECT_EQ(restored(), rng());
}

TEST(CheckpointCodec, SectionMismatchThrows) {
  CheckpointWriter w;
  w.section("aaaa");
  CheckpointReader r(w.bytes());
  EXPECT_THROW(r.section("bbbb"), CheckpointError);
}

TEST(CheckpointCodec, TruncatedReadThrows) {
  CheckpointWriter w;
  w.u32(7);
  CheckpointReader r(w.bytes());
  EXPECT_THROW(r.u64(), CheckpointError);
}

TEST(CheckpointCodec, TrailingBytesFailExpectEnd) {
  CheckpointWriter w;
  w.u8(1);
  w.u8(2);
  CheckpointReader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), CheckpointError);
}

TEST(CheckpointCodec, LengthGuardRejectsOversizedCounts) {
  // A forged count that the remaining payload cannot possibly hold must be
  // rejected before any resize happens.
  CheckpointWriter w;
  w.u64(1u << 30);
  CheckpointReader r(w.bytes());
  EXPECT_THROW(r.length(8), CheckpointError);
}

TEST(CheckpointHeader, SealOpenRoundTrips) {
  const std::string payload = "payload bytes \x01\x02\x00 end";
  EXPECT_EQ(open_checkpoint(seal_checkpoint(payload)), payload);
}

TEST(CheckpointHeader, RejectsEveryCorruptionIndependently) {
  const std::string sealed = seal_checkpoint("some payload, long enough");
  // Bad magic.
  {
    std::string bad = sealed;
    bad[0] ^= 0x20;
    EXPECT_THROW(open_checkpoint(bad), CheckpointError);
  }
  // Foreign schema.
  {
    std::string bad = sealed;
    bad[8] = static_cast<char>(bad[8] + 1);
    EXPECT_THROW(open_checkpoint(bad), CheckpointError);
  }
  // Truncation: declared size no longer matches the carried bytes.
  {
    std::string bad = sealed.substr(0, sealed.size() - 3);
    EXPECT_THROW(open_checkpoint(bad), CheckpointError);
  }
  // Payload bit flip: checksum mismatch.
  {
    std::string bad = sealed;
    bad[bad.size() - 2] ^= 0x10;
    EXPECT_THROW(open_checkpoint(bad), CheckpointError);
  }
}

TEST(CheckpointFile, SaveLoadRoundTripsAndMissingFileThrows) {
  const std::string path = "ckpt_roundtrip_test.bin";
  const std::string payload = std::string("abc\0\xff payload", 13);
  save_checkpoint_file(path, payload);
  EXPECT_EQ(load_checkpoint_file(path), payload);
  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint_file(path), CheckpointError);
}

// --- resume equivalence through the property harness ----------------------

Scenario resume_scenario() {
  Scenario s;
  s.n = 12;
  s.c = 4;
  s.k = 2;
  s.protocol = ScnProtocol::CogCast;
  s.jammer = ScnJammer::Random;
  s.jam_budget = 1;
  s.slots = 48;
  s.snap = 17;
  s.crashes = 1;
  s.shards = 2;
  s.salt = 0xBEEF;
  return s;
}

TEST(ResumeEquivalence, CheckScenarioHoldsOnAFixedScenario) {
  // check_scenario runs the resume differential on every scenario: this
  // pins one deliberately busy configuration (CogCast + jammer + crash
  // fault + sharded resolve) as a deterministic unit-level instance.
  EXPECT_EQ(check_scenario(resume_scenario()), "");
}

TEST(ResumeEquivalence, SkewedRestoreIsCaught) {
  // Restoring the snapshot taken one slot early must be flagged — this is
  // the unit-level half of the `cograd check --testonly-mutation
  // resume-skew` WILL_FAIL leg.
  CheckOptions options;
  options.resume_skew = true;
  const std::string msg = check_scenario(resume_scenario(), options);
  EXPECT_NE(msg.find("resumed run diverged"), std::string::npos) << msg;
}

// --- job journal ----------------------------------------------------------

JobSpec small_spec(std::uint64_t seed) {
  JobSpec spec;
  spec.n = 12;
  spec.c = 4;
  spec.k = 2;
  spec.seed = seed;
  return spec;
}

TEST(JobJournal, LifecycleRoundTripsThroughRecovery) {
  const std::string path = "journal_roundtrip_test.log";
  std::remove(path.c_str());
  const std::string snapshot("snapshot \0\x01 bytes", 17);
  const JobResult result = run_job(small_spec(5));
  {
    JobJournal journal(path);
    journal.submitted(1, 100, small_spec(5));
    journal.started(1);
    journal.checkpoint(1, snapshot);
    journal.done(1, result);
    journal.clean_shutdown();
    // The daemon came back and accepted more work: a lifecycle record
    // after the marker means the journal is no longer "clean".
    journal.submitted(2, 101, small_spec(6));
  }
  const JournalRecovery rec = read_journal(path);
  EXPECT_EQ(rec.records, 6);
  EXPECT_EQ(rec.torn_bytes, 0);
  EXPECT_FALSE(rec.clean_shutdown)
      << "lifecycle records after the marker must clear it";
  ASSERT_EQ(rec.jobs.size(), 2u);
  EXPECT_EQ(rec.jobs[0].seq, 1);
  EXPECT_EQ(rec.jobs[0].client_id, 100);
  EXPECT_TRUE(rec.jobs[0].started);
  EXPECT_TRUE(rec.jobs[0].done);
  EXPECT_EQ(rec.jobs[0].checkpoint, snapshot);
  EXPECT_EQ(rec.jobs[0].result_json, job_result_to_json(result));
  EXPECT_EQ(rec.jobs[0].spec.seed, 5u);
  EXPECT_FALSE(rec.jobs[1].started);
  EXPECT_FALSE(rec.jobs[1].done);
  EXPECT_EQ(rec.next_seq, 3);
  std::remove(path.c_str());
}

TEST(JobJournal, CleanShutdownAsFinalRecordSticks) {
  const std::string path = "journal_clean_test.log";
  std::remove(path.c_str());
  {
    JobJournal journal(path);
    journal.submitted(1, 100, small_spec(5));
    journal.done(1, run_job(small_spec(5)));
    journal.clean_shutdown();
  }
  EXPECT_TRUE(read_journal(path).clean_shutdown);
  std::remove(path.c_str());
}

TEST(JobJournal, TornTailToleratedAndRepairedOnReopen) {
  const std::string path = "journal_torn_test.log";
  std::remove(path.c_str());
  {
    JobJournal journal(path);
    journal.submitted(1, 100, small_spec(5));
  }
  const std::string committed = slurp(path);
  spill(path, committed + "{\"crc\":\"0000tornrecord");

  // The reader tolerates and counts the torn record...
  const JournalRecovery rec = read_journal(path);
  EXPECT_EQ(rec.records, 1);
  EXPECT_GT(rec.torn_bytes, 0);
  ASSERT_EQ(rec.jobs.size(), 1u);

  // ...and reopening for append truncates it back to the committed bytes.
  { JobJournal journal(path); }
  EXPECT_EQ(slurp(path), committed);
  EXPECT_EQ(read_journal(path).torn_bytes, 0);
  std::remove(path.c_str());
}

TEST(JobJournal, InteriorCorruptionThrows) {
  const std::string path = "journal_corrupt_test.log";
  std::remove(path.c_str());
  {
    JobJournal journal(path);
    journal.submitted(1, 100, small_spec(5));
    journal.started(1);
  }
  std::string bytes = slurp(path);
  // Flip one byte inside the first record's body: the CRC must catch it.
  bytes[40] ^= 0x20;
  spill(path, bytes);
  EXPECT_THROW(read_journal(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(JobJournal, DuplicateAndUnknownSeqRejected) {
  const std::string dup = "journal_dup_test.log";
  std::remove(dup.c_str());
  {
    JobJournal journal(dup);
    journal.submitted(1, 100, small_spec(5));
    journal.submitted(1, 101, small_spec(6));
  }
  EXPECT_THROW(read_journal(dup), CheckpointError);
  std::remove(dup.c_str());

  const std::string orphan = "journal_orphan_test.log";
  std::remove(orphan.c_str());
  {
    JobJournal journal(orphan);
    journal.started(9);  // no submitted record for seq 9
  }
  EXPECT_THROW(read_journal(orphan), CheckpointError);
  std::remove(orphan.c_str());
}

}  // namespace
}  // namespace cogradio
