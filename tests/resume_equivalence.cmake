# Supervised resume equivalence at the CLI, manifest for manifest:
#   1. an uninterrupted control run writes its outcome manifest;
#   2. a checkpointing run (--checkpoint --checkpoint-every 32) must write
#      the identical manifest while leaving a mid-run snapshot behind;
#   3. a run resumed from that snapshot (--resume) must write the
#      identical manifest again.
# Any divergence — stats, epochs, restarts, the aggregate — is a byte
# difference. Driven by the cograd.resume_equivalence_* ctest legs at
# shards 1 and 4 for both supervised scenario families (CogCast broadcast
# on the partitioned pattern, CogComp aggregation).
#
# Usage: cmake -DCOGRAD=<path> -DMODE=broadcast|aggregate -DSHARDS=N
#              -P resume_equivalence.cmake

if(NOT COGRAD OR NOT MODE OR NOT SHARDS)
  message(FATAL_ERROR "need -DCOGRAD, -DMODE, -DSHARDS")
endif()

# Long enough runs that --checkpoint-every 32 cuts several mid-run
# snapshots (the partitioned broadcast runs ~130 slots, the aggregation
# ~160), so the resume leg genuinely continues from the middle.
if(MODE STREQUAL "broadcast")
  set(base_args broadcast --n 256 --c 32 --k 2 --pattern partitioned)
elseif(MODE STREQUAL "aggregate")
  set(base_args aggregate --n 24 --c 6 --k 2 --op sum)
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
list(APPEND base_args --trials 1 --supervise --seed 7 --shards ${SHARDS})

# Filenames carry the leg so parallel ctest workers never collide.
set(tag ${MODE}_s${SHARDS})
set(control resume_ctrl_${tag}.json)
set(full resume_full_${tag}.json)
set(resumed resume_res_${tag}.json)
set(snapshot resume_ckpt_${tag}.bin)

function(run_leg outfile)
  execute_process(
    COMMAND ${COGRAD} ${base_args} ${ARGN} --outcome-out ${outfile}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cograd ${MODE} leg writing ${outfile} failed (${rc})")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ — resume is not "
                        "bit-identical")
  endif()
endfunction()

run_leg(${control})
run_leg(${full} --checkpoint ${snapshot} --checkpoint-every 32)
require_identical(${control} ${full}
                  "checkpointing run diverged from the control")
if(NOT EXISTS ${snapshot})
  message(FATAL_ERROR "checkpointing run left no snapshot at ${snapshot}")
endif()
run_leg(${resumed} --resume ${snapshot})
require_identical(${control} ${resumed}
                  "resumed run diverged from the control")
