// Tests for the decay-backoff substrate (footnote 4 / appendix): it must
// emulate the paper's one-winner collision model on a collision-loss radio
// in O(log^2 n) micro-slots with a uniform winner.
#include "sim/backoff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/assignment.h"
#include "sim/network.h"
#include "util/stats.h"

namespace cogradio {
namespace {

TEST(Backoff, SingleContenderResolvesImmediately) {
  Rng rng(1);
  const auto out = decay_backoff(1, backoff_params_for(8), rng);
  EXPECT_TRUE(out.resolved);
  EXPECT_EQ(out.winner, 0);
  EXPECT_EQ(out.micro_slots, 1);
}

TEST(Backoff, ParamsScaleLogarithmically) {
  const auto p8 = backoff_params_for(8);
  const auto p1024 = backoff_params_for(1024);
  EXPECT_GT(p1024.phase_length, p8.phase_length);
  EXPECT_GE(p8.phase_length, 4);     // ceil(log2 8) + 1
  EXPECT_GE(p1024.phase_length, 11); // ceil(log2 1024) + 1
  EXPECT_EQ(p1024.budget, 8 * p1024.phase_length * p1024.phase_length);
}

TEST(Backoff, ResolvesWithHighProbability) {
  Rng rng(2);
  for (int contenders : {2, 5, 17, 64, 200}) {
    const auto params = backoff_params_for(contenders);
    int resolved = 0;
    constexpr int kTrials = 500;
    for (int t = 0; t < kTrials; ++t)
      if (decay_backoff(contenders, params, rng).resolved) ++resolved;
    EXPECT_GE(resolved, kTrials - 1) << "contenders=" << contenders;
  }
}

TEST(Backoff, WinnerIsUniformAmongContenders) {
  Rng rng(3);
  constexpr int kContenders = 4;
  constexpr int kTrials = 8000;
  std::vector<int> wins(kContenders, 0);
  const auto params = backoff_params_for(kContenders);
  for (int t = 0; t < kTrials; ++t) {
    const auto out = decay_backoff(kContenders, params, rng);
    ASSERT_TRUE(out.resolved);
    ++wins[static_cast<std::size_t>(out.winner)];
  }
  for (int w : wins)
    EXPECT_NEAR(w, kTrials / kContenders, kTrials / 10);
}

TEST(Backoff, MicroSlotsGrowSubquadraticallyInContenders) {
  // Median micro-slots to resolve should scale like O(log^2 n): going from
  // 4 to 256 contenders (64x) should grow the median far less than 8x.
  Rng rng(4);
  auto median_for = [&](int contenders) {
    const auto params = backoff_params_for(512);
    std::vector<double> samples;
    for (int t = 0; t < 400; ++t) {
      const auto out = decay_backoff(contenders, params, rng);
      EXPECT_TRUE(out.resolved);
      samples.push_back(static_cast<double>(out.micro_slots));
    }
    return summarize(samples).median;
  };
  const double m4 = median_for(4);
  const double m256 = median_for(256);
  EXPECT_LT(m256, 8.0 * m4);
  EXPECT_LE(m256, 4.0 * std::log2(256) * std::log2(256));
}

TEST(BackoffNetwork, EmulatedContentionMatchesModelSemantics) {
  // Three broadcasters + one listener on a single channel, resolved by the
  // emulated backoff: exactly one winner, the listener receives its
  // message, and micro-slot accounting is populated.
  class Talker : public Protocol {
   public:
    explicit Talker(bool talk) : talk_(talk) {}
    Action on_slot(Slot) override {
      if (!talk_) return Action::listen(0);
      Message m;
      m.type = MessageType::Data;
      return Action::broadcast(0, m);
    }
    void on_feedback(Slot, const SlotResult& r) override {
      won = r.tx_success;
      heard = !r.received.empty();
    }
    bool done() const override { return true; }
    bool talk_;
    bool won = false;
    bool heard = false;
  };

  IdentityAssignment assignment(4, 1, LabelMode::Global, Rng(5));
  Talker a(true), b(true), c(true), l(false);
  NetworkOptions opt;
  opt.emulate_backoff = true;
  opt.backoff = backoff_params_for(4);
  Network net(assignment, {&a, &b, &c, &l}, opt);
  net.step();
  const int winners = (a.won ? 1 : 0) + (b.won ? 1 : 0) + (c.won ? 1 : 0);
  EXPECT_EQ(winners, 1);
  EXPECT_TRUE(l.heard);
  EXPECT_GE(net.stats().micro_slots, 1);
  EXPECT_EQ(net.stats().backoff_failures, 0);
}

TEST(CdSplitBackoff, SingleContenderImmediate) {
  Rng rng(11);
  const auto out = cd_split_backoff(1, 100, rng);
  EXPECT_TRUE(out.resolved);
  EXPECT_EQ(out.winner, 0);
  EXPECT_EQ(out.micro_slots, 1);
}

TEST(CdSplitBackoff, ResolvesReliably) {
  Rng rng(12);
  for (int m : {2, 8, 64, 512}) {
    int resolved = 0;
    for (int t = 0; t < 500; ++t)
      if (cd_split_backoff(m, 200, rng).resolved) ++resolved;
    EXPECT_EQ(resolved, 500) << "m=" << m;
  }
}

TEST(CdSplitBackoff, WinnerUniform) {
  Rng rng(13);
  constexpr int kContenders = 5;
  constexpr int kTrials = 10'000;
  std::vector<int> wins(kContenders, 0);
  for (int t = 0; t < kTrials; ++t) {
    const auto out = cd_split_backoff(kContenders, 500, rng);
    ASSERT_TRUE(out.resolved);
    ++wins[static_cast<std::size_t>(out.winner)];
  }
  for (int w : wins) EXPECT_NEAR(w, kTrials / kContenders, kTrials / 12);
}

TEST(CdSplitBackoff, FasterThanDecayAtScale) {
  // Collision detection buys a log factor: at 512 contenders the CD
  // splitter's median resolution should beat plain decay's.
  Rng rng(14);
  auto median_of = [&](auto&& resolver) {
    std::vector<double> samples;
    for (int t = 0; t < 400; ++t) {
      const auto out = resolver();
      EXPECT_TRUE(out.resolved);
      samples.push_back(static_cast<double>(out.micro_slots));
    }
    return summarize(samples).median;
  };
  const auto params = backoff_params_for(512);
  const double decay = median_of([&] { return decay_backoff(512, params, rng); });
  const double cd = median_of([&] { return cd_split_backoff(512, 10'000, rng); });
  EXPECT_LE(cd, decay + 1.0);
}

TEST(Backoff, TinyBudgetReportsFailure) {
  Rng rng(6);
  BackoffParams params;
  params.phase_length = 1;  // p = 1 every micro-slot: 2+ contenders always collide
  params.budget = 4;
  const auto out = decay_backoff(3, params, rng);
  EXPECT_FALSE(out.resolved);
  EXPECT_EQ(out.micro_slots, 4);
}

}  // namespace
}  // namespace cogradio
