// Integration tests for the network engine's collision-model semantics
// (Section 2). Scripted protocols pin nodes to fixed channels/roles so each
// delivery rule can be checked in isolation.
#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/cogcast.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

// A protocol following a fixed per-slot script, recording all feedback.
class ScriptedNode : public Protocol {
 public:
  explicit ScriptedNode(std::vector<Action> script) : script_(std::move(script)) {}

  Action on_slot(Slot slot) override {
    const auto idx = static_cast<std::size_t>(slot - 1);
    return idx < script_.size() ? script_[idx] : Action::idle();
  }

  void on_feedback(Slot, const SlotResult& result) override {
    Feedback f;
    f.jammed = result.jammed;
    f.tx_attempted = result.tx_attempted;
    f.tx_success = result.tx_success;
    f.received.assign(result.received.begin(), result.received.end());
    feedback_.push_back(std::move(f));
  }

  bool done() const override {
    return feedback_.size() >= script_.size();
  }

  struct Feedback {
    bool jammed = false;
    bool tx_attempted = false;
    bool tx_success = false;
    std::vector<Message> received;
  };
  std::vector<Feedback> feedback_;

 private:
  std::vector<Action> script_;
};

Message data_msg(std::int64_t a) {
  Message m;
  m.type = MessageType::Data;
  m.a = a;
  return m;
}

struct Rig {
  // All nodes share channels 0..c-1 with identity labels, so local label ==
  // physical channel and scripts are easy to read.
  Rig(int n, int c, std::vector<std::vector<Action>> scripts,
      NetworkOptions options = {})
      : assignment(n, c, LabelMode::Global, Rng(1)) {
    for (auto& s : scripts) nodes.push_back(std::make_unique<ScriptedNode>(std::move(s)));
    std::vector<Protocol*> protocols;
    for (auto& node : nodes) protocols.push_back(node.get());
    network.emplace(assignment, std::move(protocols), options);
  }

  ScriptedNode& node(int i) { return *nodes[static_cast<std::size_t>(i)]; }

  IdentityAssignment assignment;
  std::vector<std::unique_ptr<ScriptedNode>> nodes;
  std::optional<Network> network;
};

TEST(Network, SoleBroadcasterAlwaysSucceeds) {
  Rig rig(2, 2,
          {{Action::broadcast(0, data_msg(7))}, {Action::listen(0)}});
  rig.network->step();
  EXPECT_TRUE(rig.node(0).feedback_[0].tx_attempted);
  EXPECT_TRUE(rig.node(0).feedback_[0].tx_success);
  ASSERT_EQ(rig.node(1).feedback_[0].received.size(), 1u);
  EXPECT_EQ(rig.node(1).feedback_[0].received[0].a, 7);
  EXPECT_EQ(rig.node(1).feedback_[0].received[0].sender, 0);
}

TEST(Network, ListenersOnOtherChannelsHearNothing) {
  Rig rig(2, 2,
          {{Action::broadcast(0, data_msg(7))}, {Action::listen(1)}});
  rig.network->step();
  EXPECT_TRUE(rig.node(1).feedback_[0].received.empty());
}

TEST(Network, OneWinnerExactlyOneSucceeds) {
  Rig rig(4, 2,
          {{Action::broadcast(0, data_msg(1))},
           {Action::broadcast(0, data_msg(2))},
           {Action::broadcast(0, data_msg(3))},
           {Action::listen(0)}});
  rig.network->step();
  int winners = 0;
  std::int64_t winner_payload = -1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(rig.node(i).feedback_[0].tx_attempted);
    if (rig.node(i).feedback_[0].tx_success) {
      ++winners;
      winner_payload = static_cast<std::int64_t>(i) + 1;
    }
  }
  EXPECT_EQ(winners, 1);
  ASSERT_EQ(rig.node(3).feedback_[0].received.size(), 1u);
  EXPECT_EQ(rig.node(3).feedback_[0].received[0].a, winner_payload);
  EXPECT_EQ(rig.network->stats().collision_events, 1);
}

TEST(Network, FailedBroadcastersReceiveTheWinningMessage) {
  // Section 2: "failed ones receive the message that was sent."
  Rig rig(2, 1,
          {{Action::broadcast(0, data_msg(1))},
           {Action::broadcast(0, data_msg(2))}});
  rig.network->step();
  const auto& f0 = rig.node(0).feedback_[0];
  const auto& f1 = rig.node(1).feedback_[0];
  ASSERT_NE(f0.tx_success, f1.tx_success);  // exactly one winner
  const auto& loser = f0.tx_success ? f1 : f0;
  const auto& winner = f0.tx_success ? f0 : f1;
  const std::int64_t winner_payload = f0.tx_success ? 1 : 2;
  ASSERT_EQ(loser.received.size(), 1u);
  EXPECT_EQ(loser.received[0].a, winner_payload);
  EXPECT_TRUE(winner.received.empty());
}

TEST(Network, WinnerIsRoughlyUniform) {
  int wins[3] = {0, 0, 0};
  for (int trial = 0; trial < 3000; ++trial) {
    NetworkOptions opt;
    opt.seed = static_cast<std::uint64_t>(trial) + 1;
    Rig rig(3, 1,
            {{Action::broadcast(0, data_msg(0))},
             {Action::broadcast(0, data_msg(1))},
             {Action::broadcast(0, data_msg(2))}},
            opt);
    rig.network->step();
    for (int i = 0; i < 3; ++i)
      if (rig.node(i).feedback_[0].tx_success) ++wins[i];
  }
  for (int w : wins) EXPECT_NEAR(w, 1000, 120);
}

TEST(Network, IdleNodesGetEmptyFeedback) {
  Rig rig(2, 1, {{Action::idle()}, {Action::idle()}});
  rig.network->step();
  EXPECT_FALSE(rig.node(0).feedback_[0].tx_attempted);
  EXPECT_TRUE(rig.node(0).feedback_[0].received.empty());
  EXPECT_EQ(rig.network->stats().idle_node_slots, 2);
}

TEST(Network, AllDeliveredModelDeliversEverything) {
  NetworkOptions opt;
  opt.collision = CollisionModel::AllDelivered;
  Rig rig(3, 1,
          {{Action::broadcast(0, data_msg(1))},
           {Action::broadcast(0, data_msg(2))},
           {Action::listen(0)}},
          opt);
  rig.network->step();
  EXPECT_TRUE(rig.node(0).feedback_[0].tx_success);
  EXPECT_TRUE(rig.node(1).feedback_[0].tx_success);
  ASSERT_EQ(rig.node(2).feedback_[0].received.size(), 2u);
}

TEST(Network, CollisionLossDestroysConcurrentBroadcasts) {
  NetworkOptions opt;
  opt.collision = CollisionModel::CollisionLoss;
  Rig rig(3, 1,
          {{Action::broadcast(0, data_msg(1))},
           {Action::broadcast(0, data_msg(2))},
           {Action::listen(0)}},
          opt);
  rig.network->step();
  EXPECT_FALSE(rig.node(0).feedback_[0].tx_success);
  EXPECT_FALSE(rig.node(1).feedback_[0].tx_success);
  EXPECT_TRUE(rig.node(2).feedback_[0].received.empty());
}

TEST(Network, CollisionLossSoleBroadcastDelivers) {
  NetworkOptions opt;
  opt.collision = CollisionModel::CollisionLoss;
  Rig rig(2, 1, {{Action::broadcast(0, data_msg(9))}, {Action::listen(0)}},
          opt);
  rig.network->step();
  EXPECT_TRUE(rig.node(0).feedback_[0].tx_success);
  ASSERT_EQ(rig.node(1).feedback_[0].received.size(), 1u);
}

TEST(Network, ChannelsAreIndependent) {
  Rig rig(4, 2,
          {{Action::broadcast(0, data_msg(1))},
           {Action::listen(0)},
           {Action::broadcast(1, data_msg(2))},
           {Action::listen(1)}});
  rig.network->step();
  EXPECT_EQ(rig.node(1).feedback_[0].received[0].a, 1);
  EXPECT_EQ(rig.node(3).feedback_[0].received[0].a, 2);
  EXPECT_EQ(rig.network->stats().collision_events, 0);
  EXPECT_EQ(rig.network->stats().successes, 2);
  EXPECT_EQ(rig.network->stats().deliveries, 2);
}

TEST(Network, RunStopsWhenAllDone) {
  // Scripts of different lengths; run() should stop at the longest.
  Rig rig(2, 1,
          {{Action::listen(0), Action::listen(0)},
           {Action::listen(0), Action::listen(0), Action::listen(0)}});
  const Slot end = rig.network->run(100);
  EXPECT_EQ(end, 3);
  EXPECT_TRUE(rig.network->all_done());
}

TEST(Network, RunHonorsSlotCap) {
  Rig rig(1, 1, {std::vector<Action>(50, Action::listen(0))});
  EXPECT_EQ(rig.network->run(10), 10);
  EXPECT_FALSE(rig.network->all_done());
}

TEST(Network, ObserverSeesResolvedActions) {
  Rig rig(2, 2,
          {{Action::broadcast(1, data_msg(1))}, {Action::listen(1)}});
  std::vector<ResolvedAction> seen;
  rig.network->set_observer([&](Slot, std::span<const ResolvedAction> acts) {
    seen.assign(acts.begin(), acts.end());
  });
  rig.network->step();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].mode, Mode::Broadcast);
  EXPECT_EQ(seen[0].channel, 1);
  EXPECT_TRUE(seen[0].tx_success);
  EXPECT_EQ(seen[1].mode, Mode::Listen);
}

TEST(Network, SenderFieldIsStampedByNetwork) {
  // Even if the protocol forges msg.sender, the network overwrites it.
  Message forged = data_msg(1);
  forged.sender = 77;
  Rig rig(2, 1, {{Action::broadcast(0, forged)}, {Action::listen(0)}});
  rig.network->step();
  EXPECT_EQ(rig.node(1).feedback_[0].received[0].sender, 0);
}

TEST(Network, RejectsBadConstruction) {
  IdentityAssignment a(2, 2, LabelMode::Global, Rng(1));
  ScriptedNode n1({}), n2({}), n3({});
  EXPECT_THROW(Network(a, {}), std::invalid_argument);
  EXPECT_THROW(Network(a, {&n1}), std::invalid_argument);
  EXPECT_THROW(Network(a, {&n1, &n2, &n3}), std::invalid_argument);
  EXPECT_THROW(Network(a, {&n1, nullptr}), std::invalid_argument);
}

TEST(Network, FadingDropsDeliveriesIndependently) {
  // With loss_prob = 1 nothing is ever delivered; with 0.5 roughly half
  // the copies arrive; tx_success is unaffected either way.
  int delivered_half = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    NetworkOptions opt;
    opt.seed = static_cast<std::uint64_t>(t) + 1;
    opt.loss_prob = 0.5;
    Rig rig(2, 1, {{Action::broadcast(0, data_msg(1))}, {Action::listen(0)}},
            opt);
    rig.network->step();
    EXPECT_TRUE(rig.node(0).feedback_[0].tx_success);
    if (!rig.node(1).feedback_[0].received.empty()) ++delivered_half;
  }
  EXPECT_NEAR(delivered_half, kTrials / 2, kTrials / 8);

  NetworkOptions total_loss;
  total_loss.loss_prob = 1.0;
  Rig rig(2, 1, {{Action::broadcast(0, data_msg(1))}, {Action::listen(0)}},
          total_loss);
  rig.network->step();
  EXPECT_TRUE(rig.node(0).feedback_[0].tx_success);
  EXPECT_TRUE(rig.node(1).feedback_[0].received.empty());
}

// Differential test for the two grouping paths: the counting sort that
// step() uses by default must reproduce the reference std::stable_sort
// execution bit for bit — same winners, same deliveries, same per-node
// accounting — under every collision model.
TEST(Network, GroupingStrategiesBitIdentical) {
  struct RunTrace {
    std::vector<ResolvedAction> actions;
    TraceStats stats;
    std::vector<NodeActivity> activity;
    Slot done_at = 0;
  };
  const auto run_once = [](GroupingStrategy grouping, CollisionModel model) {
    const int n = 48, c = 8, k = 2;
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(21));
    Message payload;
    payload.type = MessageType::Data;
    payload.a = 7;
    Rng seeder(22);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, payload,
          seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    // Pin the AoS reference path: grouping strategies are an AoS knob (the
    // SoA layout groups via channel bitmaps; tests/test_engine_layouts.cpp
    // covers that differential).
    opt.layout = EngineLayout::AoS;
    opt.grouping = grouping;
    opt.collision = model;
    opt.seed = 23;
    Network net(assignment, protocols, opt);
    RunTrace trace;
    net.set_observer([&](Slot, std::span<const ResolvedAction> actions) {
      trace.actions.insert(trace.actions.end(), actions.begin(),
                           actions.end());
    });
    trace.done_at = net.run(5000);
    trace.stats = net.stats();
    for (NodeId u = 0; u < n; ++u) trace.activity.push_back(net.activity(u));
    return trace;
  };

  for (const CollisionModel model :
       {CollisionModel::OneWinner, CollisionModel::AllDelivered,
        CollisionModel::CollisionLoss}) {
    SCOPED_TRACE(static_cast<int>(model));
    const RunTrace counting = run_once(GroupingStrategy::CountingSort, model);
    const RunTrace comparison =
        run_once(GroupingStrategy::ComparisonSort, model);

    EXPECT_EQ(counting.done_at, comparison.done_at);
    EXPECT_EQ(counting.stats.slots, comparison.stats.slots);
    EXPECT_EQ(counting.stats.broadcasts, comparison.stats.broadcasts);
    EXPECT_EQ(counting.stats.successes, comparison.stats.successes);
    EXPECT_EQ(counting.stats.deliveries, comparison.stats.deliveries);
    EXPECT_EQ(counting.stats.collision_events,
              comparison.stats.collision_events);
    EXPECT_EQ(counting.stats.idle_node_slots, comparison.stats.idle_node_slots);
    EXPECT_EQ(counting.stats.total_message_words,
              comparison.stats.total_message_words);

    ASSERT_EQ(counting.activity.size(), comparison.activity.size());
    for (std::size_t u = 0; u < counting.activity.size(); ++u) {
      const NodeActivity& a = counting.activity[u];
      const NodeActivity& b = comparison.activity[u];
      EXPECT_EQ(a.tx, b.tx) << "node " << u;
      EXPECT_EQ(a.tx_success, b.tx_success) << "node " << u;
      EXPECT_EQ(a.listen, b.listen) << "node " << u;
      EXPECT_EQ(a.received, b.received) << "node " << u;
      EXPECT_EQ(a.idle, b.idle) << "node " << u;
    }

    ASSERT_EQ(counting.actions.size(), comparison.actions.size());
    for (std::size_t i = 0; i < counting.actions.size(); ++i) {
      const ResolvedAction& a = counting.actions[i];
      const ResolvedAction& b = comparison.actions[i];
      EXPECT_EQ(a.node, b.node) << "action " << i;
      EXPECT_EQ(a.mode, b.mode) << "action " << i;
      EXPECT_EQ(a.channel, b.channel) << "action " << i;
      EXPECT_EQ(a.tx_success, b.tx_success) << "action " << i;
    }
  }
}

// Records every observe() handoff and jams one fixed (node, channel) pair.
class RecordingJammer : public Jammer {
 public:
  RecordingJammer(NodeId jam_node, Channel jam_channel)
      : jam_node_(jam_node), jam_channel_(jam_channel) {}

  void begin_slot(Slot) override {}
  bool is_jammed(NodeId node, Channel channel) const override {
    return node == jam_node_ && channel == jam_channel_;
  }
  void observe(Slot, std::span<const Channel> node_channels) override {
    observed_.emplace_back(node_channels.begin(), node_channels.end());
  }

  std::vector<std::vector<Channel>> observed_;  // per slot

 private:
  NodeId jam_node_;
  Channel jam_channel_;
};

// The per-slot used_channel_ fill is skipped entirely when no jammer is
// attached; with one attached, both engine layouts must hand observe() the
// exact physical channel per node (kNoChannel when idle) and apply jam
// cutoffs identically.
TEST(Network, JammerObserveHandoffIdenticalAcrossLayouts) {
  struct JamRun {
    std::vector<std::vector<Channel>> observed;
    std::vector<ScriptedNode::Feedback> fb0, fb1, fb2;
    TraceStats stats;
  };
  const auto run_once = [](EngineLayout layout) {
    NetworkOptions opt;
    opt.layout = layout;
    opt.seed = 47;
    Rig rig(3, 3,
            {{Action::broadcast(0, data_msg(1)), Action::listen(1)},
             {Action::listen(0), Action::idle()},
             {Action::idle(), Action::broadcast(1, data_msg(2))}},
            opt);
    RecordingJammer jammer(/*jam_node=*/1, /*jam_channel=*/0);
    rig.network->set_jammer(&jammer);
    rig.network->step();
    rig.network->step();
    return JamRun{jammer.observed_, rig.node(0).feedback_,
                  rig.node(1).feedback_, rig.node(2).feedback_,
                  rig.network->stats()};
  };

  const JamRun soa = run_once(EngineLayout::SoA);
  const JamRun aos = run_once(EngineLayout::AoS);

  // Content check (both layouts): observe() sees physical channels, with
  // kNoChannel for idle nodes, and the jammed listener is cut off.
  for (const JamRun* run : {&soa, &aos}) {
    ASSERT_EQ(run->observed.size(), 2u);
    EXPECT_EQ(run->observed[0], (std::vector<Channel>{0, 0, kNoChannel}));
    EXPECT_EQ(run->observed[1], (std::vector<Channel>{1, kNoChannel, 1}));
    EXPECT_TRUE(run->fb0[0].tx_success);  // sole broadcaster, listener jammed
    EXPECT_TRUE(run->fb1[0].jammed);
    EXPECT_TRUE(run->fb1[0].received.empty());
    ASSERT_EQ(run->fb0[1].received.size(), 1u);  // slot 2: node 2 -> node 0
    EXPECT_EQ(run->fb0[1].received[0].a, 2);
    EXPECT_EQ(run->stats.jammed_node_slots, 1);
  }

  // Layout differential: the jammer-attached path must be bit-identical.
  EXPECT_EQ(soa.observed, aos.observed);
  EXPECT_EQ(soa.stats, aos.stats);
  for (std::size_t s = 0; s < 2; ++s) {
    for (const auto& pair :
         {std::pair{&soa.fb0, &aos.fb0}, std::pair{&soa.fb1, &aos.fb1},
          std::pair{&soa.fb2, &aos.fb2}}) {
      const ScriptedNode::Feedback& a = (*pair.first)[s];
      const ScriptedNode::Feedback& b = (*pair.second)[s];
      EXPECT_EQ(a.jammed, b.jammed) << "slot " << s;
      EXPECT_EQ(a.tx_attempted, b.tx_attempted) << "slot " << s;
      EXPECT_EQ(a.tx_success, b.tx_success) << "slot " << s;
      ASSERT_EQ(a.received.size(), b.received.size()) << "slot " << s;
      for (std::size_t m = 0; m < a.received.size(); ++m) {
        EXPECT_EQ(a.received[m].a, b.received[m].a);
        EXPECT_EQ(a.received[m].sender, b.received[m].sender);
      }
    }
  }
}

// Steady-state step() must not disturb semantics when scratch buffers are
// reused across slots: a long run through the same network object matches a
// fresh network replayed to the same slot.
TEST(Network, ScratchReuseMatchesFreshReplay) {
  const auto run_to = [](Slot slots) {
    const int n = 24, c = 6, k = 2;
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(31));
    Message payload;
    payload.type = MessageType::Data;
    Rng seeder(32);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, payload,
          seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.seed = 33;
    Network net(assignment, protocols, opt);
    for (Slot s = 0; s < slots; ++s) net.step();
    TraceStats stats = net.stats();
    return stats;
  };
  const TraceStats full = run_to(200);
  const TraceStats replay = run_to(200);
  EXPECT_EQ(full.broadcasts, replay.broadcasts);
  EXPECT_EQ(full.successes, replay.successes);
  EXPECT_EQ(full.deliveries, replay.deliveries);
  EXPECT_EQ(full.collision_events, replay.collision_events);
}

TEST(Network, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    NetworkOptions opt;
    opt.seed = seed;
    Rig rig(3, 1,
            {{Action::broadcast(0, data_msg(1))},
             {Action::broadcast(0, data_msg(2))},
             {Action::listen(0)}},
            opt);
    rig.network->step();
    return rig.node(2).feedback_[0].received[0].a;
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

}  // namespace
}  // namespace cogradio
