# Behavioral check for `cograd lint --diff OLD.json`: the diff gate fails
# only on findings that are NOT in the reference manifest. Three runs:
#
#   1. the r8_thread fixture without --diff exits nonzero (sanity),
#   2. the same tree diffed against its own manifest exits 0 — every
#      finding is carried over, none is new,
#   3. a different fixture tree diffed against that manifest exits
#      nonzero — its findings are absent from the reference.
#
# Invoked by ctest as:
#   cmake -DCOGRAD=<cograd> -DFIXTURES=<tests/lint_fixtures> -P lint_diff_mode.cmake
execute_process(
  COMMAND ${COGRAD} lint --tree ${FIXTURES}/r8_thread --json diff_base.json
  RESULT_VARIABLE base
  OUTPUT_QUIET)
if(base EQUAL 0)
  message(FATAL_ERROR "r8_thread fixture unexpectedly linted clean")
endif()
execute_process(
  COMMAND ${COGRAD} lint --tree ${FIXTURES}/r8_thread --diff diff_base.json
          --json diff_same.json
  RESULT_VARIABLE same
  OUTPUT_QUIET)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "--diff against the tree's own manifest must pass (got ${same})")
endif()
execute_process(
  COMMAND ${COGRAD} lint --tree ${FIXTURES}/r10_rng --diff diff_base.json
          --json diff_new.json
  RESULT_VARIABLE fresh
  OUTPUT_QUIET)
if(fresh EQUAL 0)
  message(FATAL_ERROR "--diff must fail on findings absent from the reference")
endif()
