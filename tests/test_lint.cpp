// Unit tests for the determinism linter (src/analysis/lint.h): tokenizer
// edge cases (comments, strings, raw strings, splices), preprocessor
// masking, the per-file rules R1-R6 and R8-R10 positive + suppressed +
// out-of-scope, the R11 CI-coverage checker, the file-local half of R12,
// suppression syntax, baseline round-trip, schema-v2 manifest fields, and
// LINT.json determinism. All fixtures are in-memory snippets handed to
// lint_source with a synthetic tree-relative path that selects the rule
// scope under test; the cross-file rules (R7, global R12) are covered by
// tests/test_include_graph.cpp and the lint_fixtures ctest legs.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/json.h"

namespace cogradio {
namespace {

int count_rule(const std::vector<LintFinding>& findings,
               const std::string& rule, bool include_suppressed = false) {
  int n = 0;
  for (const LintFinding& f : findings)
    if (f.rule == rule && (include_suppressed || !f.suppressed)) ++n;
  return n;
}

// --- tokenizer -----------------------------------------------------------

TEST(StripSource, RemovesLineAndBlockComments) {
  const StrippedSource s =
      strip_source("int a; // trailing\n/* whole */ int b;\n");
  EXPECT_EQ(s.code[0], "int a; ");
  EXPECT_EQ(s.comments[0], " trailing");
  EXPECT_EQ(s.code[1], " int b;");
  EXPECT_EQ(s.comments[1], " whole ");
}

TEST(StripSource, BlockCommentSpansLines) {
  const StrippedSource s = strip_source("a /* x\ny */ b\n");
  EXPECT_EQ(s.code[0], "a ");
  EXPECT_EQ(s.code[1], " b");
}

TEST(StripSource, BlanksStringContentsKeepsDelimiters) {
  const StrippedSource s = strip_source("f(\"rand()\");\n");
  EXPECT_EQ(s.code[0], "f(\"      \");");
}

TEST(StripSource, HandlesEscapedQuotes) {
  const StrippedSource s = strip_source("f(\"a\\\"b\"); g();\n");
  EXPECT_EQ(s.code[0], "f(\"    \"); g();");
}

TEST(StripSource, CharLiteralsAreBlanked) {
  const StrippedSource s = strip_source("if (c == ':') x();\n");
  EXPECT_EQ(s.code[0], "if (c == ' ') x();");
}

TEST(StripSource, RawStringContentIsNotCode) {
  // `rand(` inside a raw string must not reach the rule scanners, even
  // with a custom delimiter and a ')' inside the body.
  const std::string text = "auto s = R\"x(rand() time(0) ))x\"; f();\n";
  const StrippedSource s = strip_source(text);
  EXPECT_EQ(s.code[0].find("rand"), std::string::npos);
  EXPECT_NE(s.code[0].find("f();"), std::string::npos);
}

TEST(StripSource, LineSplicedCommentSwallowsNextLine) {
  const StrippedSource s = strip_source("// comment \\\nstd::rand();\nok;\n");
  // The spliced second line is still comment, not code.
  EXPECT_EQ(s.code[1].find("rand"), std::string::npos);
  EXPECT_NE(s.comments[1].find("rand"), std::string::npos);
  EXPECT_EQ(s.code[2], "ok;");
}

TEST(StripSource, DigitSeparatorsDoNotOpenCharLiterals) {
  // A C++14 digit separator must not flip the lexer into char-literal
  // state and blank the rest of the file as "string contents".
  const StrippedSource s =
      strip_source("int n = 10'000;\nstd::rand();\n");
  EXPECT_EQ(s.code[0], "int n = 10'000;");
  EXPECT_NE(s.code[1].find("rand"), std::string::npos);
}

TEST(StripSource, HexDigitSeparatorsStayInCode) {
  const StrippedSource s =
      strip_source("auto k = 0xc09'7ad'10;\ntime(nullptr);\n");
  EXPECT_EQ(s.code[0], "auto k = 0xc09'7ad'10;");
  EXPECT_NE(s.code[1].find("time"), std::string::npos);
}

TEST(StripSource, PrefixedCharLiteralsStillBlank) {
  // u8/L prefixes start with a letter, so the ' still opens a literal.
  const StrippedSource s = strip_source("auto c = u8'r'; rand();\n");
  EXPECT_EQ(s.code[0], "auto c = u8' '; rand();");
}

TEST(LintR1, FiresAfterDigitSeparatedLiteral) {
  // Regression: a separator-bearing literal earlier on the line (or file)
  // must not hide a later banned call.
  const auto f = lint_source("src/core/x.cpp",
                             "wait_until(10'000);\n"
                             "int r = std::rand();\n");
  EXPECT_EQ(count_rule(f, "R1"), 1);
}

TEST(StripSource, LineCountMatchesInput) {
  const StrippedSource s = strip_source("a\nb\nc");
  ASSERT_EQ(s.code.size(), 3u);
  ASSERT_EQ(s.comments.size(), 3u);
}

// --- suppression syntax --------------------------------------------------

TEST(Suppression, RequiresRuleAndReason) {
  std::string reason;
  EXPECT_TRUE(has_suppression(" cograd-lint: allow(R2) proven membership",
                              "R2", &reason));
  EXPECT_EQ(reason, "proven membership");
  EXPECT_FALSE(has_suppression(" cograd-lint: allow(R2)", "R2"));  // no reason
  EXPECT_FALSE(has_suppression(" cograd-lint: allow(R1) why", "R2"));
  EXPECT_FALSE(has_suppression(" unrelated comment", "R2"));
}

// --- R1 ------------------------------------------------------------------

TEST(LintR1, FlagsBannedSources) {
  const auto f = lint_source("src/core/x.cpp",
                             "int a = std::rand();\n"
                             "auto t0 = std::chrono::steady_clock::now();\n"
                             "std::random_device rd;\n"
                             "srand(7);\n"
                             "auto t = time(nullptr);\n");
  EXPECT_EQ(count_rule(f, "R1"), 5);
}

TEST(LintR1, IgnoresLookalikes) {
  const auto f = lint_source("src/core/x.cpp",
                             "int time_point = 3;\n"
                             "double uptime(4);\n"
                             "int operand = 2;\n"
                             "log(\"call rand() here\");\n"
                             "// std::rand() in a comment\n");
  EXPECT_EQ(count_rule(f, "R1"), 0);
}

TEST(LintR1, BenchReportIsAllowlisted) {
  const std::string clock_call =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_source("src/util/bench_report.cpp", clock_call),
                       "R1"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/util/other.cpp", clock_call), "R1"),
            1);
}

TEST(LintR1, SuppressionOnSameOrPreviousLine) {
  const auto same = lint_source(
      "src/x.cpp",
      "auto t = time(nullptr);  // cograd-lint: allow(R1) boot banner only\n");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_TRUE(same[0].suppressed);
  const auto above = lint_source(
      "src/x.cpp",
      "// cograd-lint: allow(R1) boot banner only\nauto t = time(nullptr);\n");
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(above[0].suppressed);
}

// --- R2 ------------------------------------------------------------------

TEST(LintR2, FlagsUnorderedInSrcOnly) {
  const std::string decl = "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(count_rule(lint_source("src/core/x.cpp", decl), "R2"), 1);
  EXPECT_EQ(count_rule(lint_source("tests/test_x.cpp", decl), "R2"), 0);
}

TEST(LintR2, IncludeLinesAreNotFlagged) {
  EXPECT_EQ(count_rule(lint_source("src/x.h", "#include <unordered_set>\n"),
                       "R2"),
            0);
}

TEST(LintR2, RangeForOverTrackedVariableFlaggedEverywhere) {
  const std::string text =
      "std::unordered_map<int, int> histogram;\n"
      "for (const auto& kv : histogram) use(kv);\n";
  // In bench/ the declaration itself is fine but iterating is not.
  EXPECT_EQ(count_rule(lint_source("bench/bench_x.cpp", text), "R2"), 1);
}

TEST(LintR2, IteratorWalkOverTrackedVariable) {
  const std::string text =
      "std::unordered_set<int> bag;\n"
      "auto it = bag.begin();\n";
  EXPECT_EQ(count_rule(lint_source("tools/x.cpp", text), "R2"), 1);
}

TEST(LintR2, ProofSuppressionAccepted) {
  const auto f = lint_source(
      "src/x.h",
      "// cograd-lint: allow(R2) membership-only, never iterated\n"
      "std::unordered_set<std::uint64_t> proposed_;\n");
  ASSERT_EQ(count_rule(f, "R2", /*include_suppressed=*/true), 1);
  EXPECT_EQ(count_rule(f, "R2"), 0);
}

// --- R3 ------------------------------------------------------------------

TEST(LintR3, FlagsLiteralSeededRngInSrc) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(12345);\n"), "R3"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "auto r = Rng(0xdead);\n"),
                       "R3"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(config.seed);\n"),
                       "R3"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(seeder());\n"),
                       "R3"),
            0);
}

TEST(LintR3, FlagsForeignEngines) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "std::mt19937_64 gen(s);\n"),
                       "R3"),
            1);
}

TEST(LintR3, TestsMayPinSeeds) {
  EXPECT_EQ(count_rule(lint_source("tests/test_x.cpp", "Rng rng(42);\n"),
                       "R3"),
            0);
}

TEST(LintR3, RngHeaderIsAllowlisted) {
  EXPECT_EQ(count_rule(lint_source("src/util/rng.h",
                                   "explicit Rng(std::uint64_t seed = "
                                   "0x9e3779b97f4a7c15ULL) noexcept;\n"),
                       "R3"),
            0);
}

// --- R4 ------------------------------------------------------------------

TEST(LintR4, FlagsPointerKeys) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::map<Protocol*, int> rank;\n"),
                       "R4"),
            1);
  EXPECT_EQ(count_rule(lint_source("tests/t.cpp",
                                   "std::set<const Node*> seen;\n"),
                       "R4"),
            1);
}

TEST(LintR4, PointerValuesAreFine) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::map<int, Protocol*> by_id;\n"),
                       "R4"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::vector<Protocol*> protocols;\n"),
                       "R4"),
            0);
}

// --- R5 ------------------------------------------------------------------

TEST(LintR5, FlagsUninitializedScalarMember) {
  const std::string text =
      "struct Stats {\n"
      "  std::int64_t slots = 0;\n"
      "  std::int64_t broadcasts;\n"
      "  double ratio;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/trace.h", text), "R5"), 2);
  // Same text outside the serialization-header scope: silent.
  EXPECT_EQ(count_rule(lint_source("src/core/cogcast.h", text), "R5"), 0);
}

TEST(LintR5, InitializedAndNonScalarMembersPass) {
  const std::string text =
      "struct Stats {\n"
      "  std::int64_t slots = 0;\n"
      "  Message msg{};\n"
      "  std::string name;\n"
      "  std::vector<int> values;\n"
      "  std::int64_t energy() const;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/trace.h", text), "R5"), 0);
}

TEST(LintR5, PrivateClassDetailsAreSkipped) {
  const std::string text =
      "struct Recorder {\n"
      "  int fields = 0;\n"
      " private:\n"
      "  bool armed;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/recorder.h", text), "R5"), 0);
}

// --- R6 ------------------------------------------------------------------

TEST(LintR6, FlagsFloatLiteralEquality) {
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (denom == 0.0) return fit;\n"),
                       "R6"),
            1);
  EXPECT_EQ(count_rule(lint_source("bench/bench_x.cpp",
                                   "bool base = q != 1.5;\n"),
                       "R6"),
            1);
}

TEST(LintR6, IntegerEqualityAndOtherScopesPass) {
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (count == 0) return;\n"),
                       "R6"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/core/cogcast.cpp",
                                   "if (gamma == 4.0) tune();\n"),
                       "R6"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (a <= 0.5) return;\n"),
                       "R6"),
            0);
}

// --- LINT.json + baseline ------------------------------------------------

std::vector<LintFinding> sample_findings() {
  return lint_source("src/core/x.cpp",
                     "int a = std::rand();\n"
                     "std::unordered_set<int> seen;\n");
}

TEST(LintJson, DeterministicAndParseable) {
  const auto findings = sample_findings();
  ASSERT_GE(findings.size(), 2u);
  const std::string one = findings_to_json(findings);
  const std::string two = findings_to_json(findings);
  EXPECT_EQ(one, two);
  std::string error;
  const auto doc = parse_json(one, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* list = doc->find("findings");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items().size(), findings.size());
  const JsonValue* counts = doc->find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->find("total")->as_number(),
            static_cast<double>(findings.size()));
}

TEST(LintJson, SortedByFileLineRule) {
  std::vector<LintFinding> findings = sample_findings();
  std::reverse(findings.begin(), findings.end());
  const std::string out = findings_to_json(findings);
  EXPECT_LT(out.find("std::rand"), out.find("unordered_set"));
}

TEST(LintBaseline, RoundTripMasksKnownFindings) {
  std::vector<LintFinding> findings = sample_findings();
  const std::string json = findings_to_json(findings);
  std::vector<std::string> keys;
  std::string error;
  ASSERT_TRUE(parse_baseline(json, &keys, &error)) << error;
  EXPECT_EQ(keys.size(), findings.size());
  EXPECT_EQ(apply_baseline(findings, keys),
            static_cast<int>(findings.size()));
  for (const LintFinding& f : findings) EXPECT_TRUE(f.baselined);
}

TEST(LintBaseline, LineNumberShiftsDoNotUnmask) {
  // Baseline captured at one line number still matches after unrelated
  // lines are inserted above the site (keys ignore line numbers).
  const auto before = lint_source("src/x.cpp", "int a = std::rand();\n");
  const std::string json = findings_to_json(before);
  std::vector<std::string> keys;
  ASSERT_TRUE(parse_baseline(json, &keys, nullptr));
  auto after =
      lint_source("src/x.cpp", "int pad = 0;\n\nint a = std::rand();\n");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].line, 3);
  EXPECT_EQ(apply_baseline(after, keys), 1);
}

TEST(LintBaseline, NewFindingsStayActive) {
  const auto before = lint_source("src/x.cpp", "int a = std::rand();\n");
  std::vector<std::string> keys;
  ASSERT_TRUE(parse_baseline(findings_to_json(before), &keys, nullptr));
  auto after = lint_source("src/x.cpp",
                           "int a = std::rand();\nsrand(9);\n");
  apply_baseline(after, keys);
  int active = 0;
  for (const LintFinding& f : after)
    if (!f.baselined && !f.suppressed) ++active;
  EXPECT_EQ(active, 1);  // the new srand site
}

TEST(LintBaseline, RejectsMalformedDocuments) {
  std::vector<std::string> keys;
  std::string error;
  EXPECT_FALSE(parse_baseline("not json", &keys, &error));
  EXPECT_FALSE(parse_baseline("{\"no_findings\": 1}", &keys, &error));
}

// --- preprocessor masking ------------------------------------------------

TEST(MaskDisabled, If0BlanksItsBranch) {
  StrippedSource s = strip_source("#if 0\nstd::rand();\n#endif\nok;\n");
  mask_disabled_regions(s);
  EXPECT_EQ(s.code[1].find("rand"), std::string::npos);
  EXPECT_EQ(s.code[3], "ok;");
}

TEST(MaskDisabled, ElseOfIf0IsEnabled) {
  StrippedSource s = strip_source("#if 0\ndead;\n#else\nlive;\n#endif\n");
  mask_disabled_regions(s);
  EXPECT_EQ(s.code[1].find("dead"), std::string::npos);
  EXPECT_NE(s.code[3].find("live"), std::string::npos);
}

TEST(MaskDisabled, If1KeepsThenBlanksElse) {
  StrippedSource s = strip_source("#if 1\nlive;\n#else\ndead;\n#endif\n");
  mask_disabled_regions(s);
  EXPECT_NE(s.code[1].find("live"), std::string::npos);
  EXPECT_EQ(s.code[3].find("dead"), std::string::npos);
}

TEST(MaskDisabled, UnknownConditionsKeepEveryBranch) {
  StrippedSource s = strip_source(
      "#ifdef FEATURE_X\none;\n#else\ntwo;\n#endif\n");
  mask_disabled_regions(s);
  EXPECT_NE(s.code[1].find("one"), std::string::npos);
  EXPECT_NE(s.code[3].find("two"), std::string::npos);
}

TEST(MaskDisabled, NestedRegionsStayDisabled) {
  StrippedSource s = strip_source(
      "#if 0\n#if 1\ninner;\n#endif\nouter;\n#endif\ntail;\n");
  mask_disabled_regions(s);
  EXPECT_EQ(s.code[2].find("inner"), std::string::npos);
  EXPECT_EQ(s.code[4].find("outer"), std::string::npos);
  EXPECT_EQ(s.code[6], "tail;");
}

TEST(MaskDisabled, DisabledCodeProducesNoFindings) {
  const auto f = lint_source("src/core/x.cpp",
                             "#if 0\nint a = std::rand();\n#endif\n");
  EXPECT_EQ(count_rule(f, "R1"), 0);
}

// --- R8 ------------------------------------------------------------------

TEST(LintR8, FlagsRawSpawnsOutsideTheAllowlist) {
  EXPECT_EQ(count_rule(lint_source("src/core/x.cpp",
                                   "std::thread t([] {});\n"),
                       "R8"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "auto f = std::async(std::launch::async, "
                                   "fn);\n"),
                       "R8"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/core/x.cpp", "worker.detach();\n"),
                       "R8"),
            1);
}

TEST(LintR8, PoolSitesAreAllowlisted) {
  const std::string spawn = "std::thread t([] {});\n";
  EXPECT_EQ(count_rule(lint_source("src/util/sweep.cpp", spawn), "R8"), 0);
  EXPECT_EQ(count_rule(lint_source("src/serve/server.cpp", spawn), "R8"), 0);
}

TEST(LintR8, SuppressionWithReasonAccepted) {
  const auto f = lint_source(
      "tests/test_x.cpp",
      "// cograd-lint: allow(R8) test races real client threads\n"
      "std::thread t([] {});\n");
  ASSERT_EQ(count_rule(f, "R8", /*include_suppressed=*/true), 1);
  EXPECT_EQ(count_rule(f, "R8"), 0);
}

// --- R9 ------------------------------------------------------------------

TEST(LintR9, UnlockedTouchOfGuardedMemberIsFlagged) {
  const std::string text =
      "class Counter {\n"
      " public:\n"
      "  void bad() {\n"
      "    ++hits_;\n"
      "  }\n"
      "  void good() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    ++hits_;\n"
      "  }\n"
      "  void flush_locked() {\n"
      "    hits_ = 0;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int hits_ = 0;  // cograd-guarded-by(mu_)\n"
      "};\n";
  const auto f = lint_source("src/util/counter.h", text);
  ASSERT_EQ(count_rule(f, "R9"), 1);
  for (const LintFinding& finding : f) {
    if (finding.rule == "R9") EXPECT_EQ(finding.line, 4);
  }
}

TEST(LintR9, UnannotatedMembersAreNotTracked) {
  const auto f = lint_source("src/util/counter.h",
                             "class C {\n"
                             "  void bump() { ++hits_; }\n"
                             "  int hits_ = 0;\n"
                             "};\n");
  EXPECT_EQ(count_rule(f, "R9"), 0);
}

// --- R10 -----------------------------------------------------------------

TEST(LintR10, ForeignSeedInsideSweepBodyIsFlagged) {
  const std::string text =
      "ParallelSweep pool(4);\n"
      "pool.run(n, [&](int t) {\n"
      "  Rng rng(shared_seed);\n"
      "  use(rng.below(10));\n"
      "});\n";
  EXPECT_GE(count_rule(lint_source("src/sim/x.cpp", text), "R10"), 1);
}

TEST(LintR10, TrialRngStreamIsSanctioned) {
  const std::string text =
      "ParallelSweep pool(4);\n"
      "pool.run(n, [&](int t) {\n"
      "  Rng rng = trial_rng(base_seed, static_cast<std::uint64_t>(t));\n"
      "  use(rng.below(10));\n"
      "});\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/x.cpp", text), "R10"), 0);
}

TEST(LintR10, GeneratorsDerivedFromTheTrialStreamPass) {
  const std::string text =
      "ParallelSweep pool(4);\n"
      "pool.run(n, [&](int t) {\n"
      "  Rng rng = trial_rng(base_seed, static_cast<std::uint64_t>(t));\n"
      "  Rng child(rng());\n"
      "  use(child.below(4));\n"
      "});\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/x.cpp", text), "R10"), 0);
}

TEST(LintR10, DrawsOutsideSweepBodiesAreNotItsBusiness) {
  const auto f = lint_source("src/sim/x.cpp",
                             "Rng rng(config.seed);\n"
                             "use(rng.below(10));\n");
  EXPECT_EQ(count_rule(f, "R10"), 0);
}

// --- R11 -----------------------------------------------------------------

TEST(LintR11, UncoveredRegexBranchIsFlagged) {
  const std::string yml = "      - run: ctest -R '(Sweep|Ghost)' -j 2\n";
  const auto f = check_ci_coverage(yml, ".github/workflows/ci.yml",
                                   {"SweepDeterminism", "cograd.lint"});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "R11");
  EXPECT_NE(f[0].message.find("Ghost"), std::string::npos);
}

TEST(LintR11, CoveredAndMetacharBranchesPass) {
  // Every branch matches a test, and the metachar-bearing branch is
  // conservatively skipped rather than string-matched.
  const std::string yml =
      "      - run: ctest -R '(Sweep|Serve)'\n"
      "      - run: ctest -R 'Sha.*rd'\n";
  const auto f = check_ci_coverage(yml, ".github/workflows/ci.yml",
                                   {"SweepDeterminism", "ServeProtocol"});
  EXPECT_TRUE(f.empty());
}

TEST(LintR11, BarePatternAndSuppression) {
  const auto bare = check_ci_coverage("      - run: ctest -R Ghost\n",
                                      ".github/workflows/ci.yml",
                                      {"SweepDeterminism"});
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_FALSE(bare[0].suppressed);
  const auto allowed = check_ci_coverage(
      "      # cograd-lint: allow(R11) leg gates a suite added next commit\n"
      "      - run: ctest -R Ghost\n",
      ".github/workflows/ci.yml", {"SweepDeterminism"});
  ASSERT_EQ(allowed.size(), 1u);
  EXPECT_TRUE(allowed[0].suppressed);
}

// --- R12 (file-local half) ----------------------------------------------

TEST(LintR12, UnknownRuleInDirective) {
  const auto f = lint_source("src/x.cpp",
                             "// cograd-lint: allow(R99) mystery rule\n"
                             "int a = 0;\n");
  EXPECT_EQ(count_rule(f, "R12"), 1);
}

TEST(LintR12, MissingReasonIsItselfAFinding) {
  const auto f = lint_source("src/x.cpp",
                             "// cograd-lint: allow(R2)\n"
                             "std::unordered_set<int> s;\n");
  // The reasonless directive is an R12 hit AND fails to suppress the R2.
  EXPECT_EQ(count_rule(f, "R12"), 1);
  EXPECT_EQ(count_rule(f, "R2"), 1);
}

TEST(LintR12, MalformedDirective) {
  const auto f = lint_source("src/x.cpp",
                             "// cograd-lint: allow R2 forgot the parens\n"
                             "int a = 0;\n");
  EXPECT_EQ(count_rule(f, "R12"), 1);
}

// --- schema v2 -----------------------------------------------------------

TEST(LintRules, SeverityAndDocCatalog) {
  EXPECT_EQ(rule_severity("R1"), "error");
  EXPECT_EQ(rule_severity("R5"), "warning");
  EXPECT_EQ(rule_severity("R6"), "warning");
  EXPECT_EQ(rule_severity("R7"), "error");
  EXPECT_EQ(rule_severity("R11"), "error");
  EXPECT_EQ(rule_severity("R12"), "warning");
  EXPECT_EQ(rule_doc("R7"), "docs/LINT.md#r7");
  EXPECT_EQ(rule_doc("R10"), "docs/LINT.md#r10");
}

TEST(LintJson, SchemaV2CarriesSeverityDocAndFixit) {
  std::vector<LintFinding> findings = sample_findings();
  ASSERT_GE(findings.size(), 1u);
  findings[0].fixit = "use trial_rng(base_seed, t)";
  const std::string out = findings_to_json(findings);
  EXPECT_NE(out.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(out.find("\"doc\": \"docs/LINT.md#r1\""), std::string::npos);
  EXPECT_NE(out.find("\"fixit\": \"use trial_rng(base_seed, t)\""),
            std::string::npos);
  // The fixit key is emitted only where a hint exists.
  const std::string bare = findings_to_json(sample_findings());
  EXPECT_EQ(bare.find("\"fixit\""), std::string::npos);
}

TEST(LintBaseline, ParsesSchemaV1Documents) {
  // A manifest written before the schema bump (no severity/doc fields)
  // must still work as a --baseline / --diff reference.
  const std::string v1 =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"findings\": [\n"
      "    {\"rule\": \"R1\", \"file\": \"src/x.cpp\", \"line\": 1,\n"
      "     \"status\": \"active\", \"snippet\": \"int a = std::rand();\",\n"
      "     \"message\": \"m\"}\n"
      "  ]\n"
      "}\n";
  std::vector<std::string> keys;
  std::string error;
  ASSERT_TRUE(parse_baseline(v1, &keys, &error)) << error;
  ASSERT_EQ(keys.size(), 1u);
  auto findings = lint_source("src/x.cpp", "int a = std::rand();\n");
  EXPECT_EQ(apply_baseline(findings, keys), 1);
}

TEST(LintBaseline, RejectsFutureSchemaVersions) {
  std::vector<std::string> keys;
  std::string error;
  EXPECT_FALSE(parse_baseline("{\"schema_version\": 3, \"findings\": []}",
                              &keys, &error));
}

}  // namespace
}  // namespace cogradio
