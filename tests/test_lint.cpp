// Unit tests for the determinism linter (src/analysis/lint.h): tokenizer
// edge cases (comments, strings, raw strings, splices), every rule R1-R6
// positive + suppressed + out-of-scope, suppression syntax, baseline
// round-trip, and LINT.json determinism. All fixtures are in-memory
// snippets handed to lint_source with a synthetic tree-relative path that
// selects the rule scope under test.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/json.h"

namespace cogradio {
namespace {

int count_rule(const std::vector<LintFinding>& findings,
               const std::string& rule, bool include_suppressed = false) {
  int n = 0;
  for (const LintFinding& f : findings)
    if (f.rule == rule && (include_suppressed || !f.suppressed)) ++n;
  return n;
}

// --- tokenizer -----------------------------------------------------------

TEST(StripSource, RemovesLineAndBlockComments) {
  const StrippedSource s =
      strip_source("int a; // trailing\n/* whole */ int b;\n");
  EXPECT_EQ(s.code[0], "int a; ");
  EXPECT_EQ(s.comments[0], " trailing");
  EXPECT_EQ(s.code[1], " int b;");
  EXPECT_EQ(s.comments[1], " whole ");
}

TEST(StripSource, BlockCommentSpansLines) {
  const StrippedSource s = strip_source("a /* x\ny */ b\n");
  EXPECT_EQ(s.code[0], "a ");
  EXPECT_EQ(s.code[1], " b");
}

TEST(StripSource, BlanksStringContentsKeepsDelimiters) {
  const StrippedSource s = strip_source("f(\"rand()\");\n");
  EXPECT_EQ(s.code[0], "f(\"      \");");
}

TEST(StripSource, HandlesEscapedQuotes) {
  const StrippedSource s = strip_source("f(\"a\\\"b\"); g();\n");
  EXPECT_EQ(s.code[0], "f(\"    \"); g();");
}

TEST(StripSource, CharLiteralsAreBlanked) {
  const StrippedSource s = strip_source("if (c == ':') x();\n");
  EXPECT_EQ(s.code[0], "if (c == ' ') x();");
}

TEST(StripSource, RawStringContentIsNotCode) {
  // `rand(` inside a raw string must not reach the rule scanners, even
  // with a custom delimiter and a ')' inside the body.
  const std::string text = "auto s = R\"x(rand() time(0) ))x\"; f();\n";
  const StrippedSource s = strip_source(text);
  EXPECT_EQ(s.code[0].find("rand"), std::string::npos);
  EXPECT_NE(s.code[0].find("f();"), std::string::npos);
}

TEST(StripSource, LineSplicedCommentSwallowsNextLine) {
  const StrippedSource s = strip_source("// comment \\\nstd::rand();\nok;\n");
  // The spliced second line is still comment, not code.
  EXPECT_EQ(s.code[1].find("rand"), std::string::npos);
  EXPECT_NE(s.comments[1].find("rand"), std::string::npos);
  EXPECT_EQ(s.code[2], "ok;");
}

TEST(StripSource, DigitSeparatorsDoNotOpenCharLiterals) {
  // A C++14 digit separator must not flip the lexer into char-literal
  // state and blank the rest of the file as "string contents".
  const StrippedSource s =
      strip_source("int n = 10'000;\nstd::rand();\n");
  EXPECT_EQ(s.code[0], "int n = 10'000;");
  EXPECT_NE(s.code[1].find("rand"), std::string::npos);
}

TEST(StripSource, HexDigitSeparatorsStayInCode) {
  const StrippedSource s =
      strip_source("auto k = 0xc09'7ad'10;\ntime(nullptr);\n");
  EXPECT_EQ(s.code[0], "auto k = 0xc09'7ad'10;");
  EXPECT_NE(s.code[1].find("time"), std::string::npos);
}

TEST(StripSource, PrefixedCharLiteralsStillBlank) {
  // u8/L prefixes start with a letter, so the ' still opens a literal.
  const StrippedSource s = strip_source("auto c = u8'r'; rand();\n");
  EXPECT_EQ(s.code[0], "auto c = u8' '; rand();");
}

TEST(LintR1, FiresAfterDigitSeparatedLiteral) {
  // Regression: a separator-bearing literal earlier on the line (or file)
  // must not hide a later banned call.
  const auto f = lint_source("src/core/x.cpp",
                             "wait_until(10'000);\n"
                             "int r = std::rand();\n");
  EXPECT_EQ(count_rule(f, "R1"), 1);
}

TEST(StripSource, LineCountMatchesInput) {
  const StrippedSource s = strip_source("a\nb\nc");
  ASSERT_EQ(s.code.size(), 3u);
  ASSERT_EQ(s.comments.size(), 3u);
}

// --- suppression syntax --------------------------------------------------

TEST(Suppression, RequiresRuleAndReason) {
  std::string reason;
  EXPECT_TRUE(has_suppression(" cograd-lint: allow(R2) proven membership",
                              "R2", &reason));
  EXPECT_EQ(reason, "proven membership");
  EXPECT_FALSE(has_suppression(" cograd-lint: allow(R2)", "R2"));  // no reason
  EXPECT_FALSE(has_suppression(" cograd-lint: allow(R1) why", "R2"));
  EXPECT_FALSE(has_suppression(" unrelated comment", "R2"));
}

// --- R1 ------------------------------------------------------------------

TEST(LintR1, FlagsBannedSources) {
  const auto f = lint_source("src/core/x.cpp",
                             "int a = std::rand();\n"
                             "auto t0 = std::chrono::steady_clock::now();\n"
                             "std::random_device rd;\n"
                             "srand(7);\n"
                             "auto t = time(nullptr);\n");
  EXPECT_EQ(count_rule(f, "R1"), 5);
}

TEST(LintR1, IgnoresLookalikes) {
  const auto f = lint_source("src/core/x.cpp",
                             "int time_point = 3;\n"
                             "double uptime(4);\n"
                             "int operand = 2;\n"
                             "log(\"call rand() here\");\n"
                             "// std::rand() in a comment\n");
  EXPECT_EQ(count_rule(f, "R1"), 0);
}

TEST(LintR1, BenchReportIsAllowlisted) {
  const std::string clock_call =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_source("src/util/bench_report.cpp", clock_call),
                       "R1"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/util/other.cpp", clock_call), "R1"),
            1);
}

TEST(LintR1, SuppressionOnSameOrPreviousLine) {
  const auto same = lint_source(
      "src/x.cpp",
      "auto t = time(nullptr);  // cograd-lint: allow(R1) boot banner only\n");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_TRUE(same[0].suppressed);
  const auto above = lint_source(
      "src/x.cpp",
      "// cograd-lint: allow(R1) boot banner only\nauto t = time(nullptr);\n");
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(above[0].suppressed);
}

// --- R2 ------------------------------------------------------------------

TEST(LintR2, FlagsUnorderedInSrcOnly) {
  const std::string decl = "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(count_rule(lint_source("src/core/x.cpp", decl), "R2"), 1);
  EXPECT_EQ(count_rule(lint_source("tests/test_x.cpp", decl), "R2"), 0);
}

TEST(LintR2, IncludeLinesAreNotFlagged) {
  EXPECT_EQ(count_rule(lint_source("src/x.h", "#include <unordered_set>\n"),
                       "R2"),
            0);
}

TEST(LintR2, RangeForOverTrackedVariableFlaggedEverywhere) {
  const std::string text =
      "std::unordered_map<int, int> histogram;\n"
      "for (const auto& kv : histogram) use(kv);\n";
  // In bench/ the declaration itself is fine but iterating is not.
  EXPECT_EQ(count_rule(lint_source("bench/bench_x.cpp", text), "R2"), 1);
}

TEST(LintR2, IteratorWalkOverTrackedVariable) {
  const std::string text =
      "std::unordered_set<int> bag;\n"
      "auto it = bag.begin();\n";
  EXPECT_EQ(count_rule(lint_source("tools/x.cpp", text), "R2"), 1);
}

TEST(LintR2, ProofSuppressionAccepted) {
  const auto f = lint_source(
      "src/x.h",
      "// cograd-lint: allow(R2) membership-only, never iterated\n"
      "std::unordered_set<std::uint64_t> proposed_;\n");
  ASSERT_EQ(count_rule(f, "R2", /*include_suppressed=*/true), 1);
  EXPECT_EQ(count_rule(f, "R2"), 0);
}

// --- R3 ------------------------------------------------------------------

TEST(LintR3, FlagsLiteralSeededRngInSrc) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(12345);\n"), "R3"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "auto r = Rng(0xdead);\n"),
                       "R3"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(config.seed);\n"),
                       "R3"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "Rng rng(seeder());\n"),
                       "R3"),
            0);
}

TEST(LintR3, FlagsForeignEngines) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", "std::mt19937_64 gen(s);\n"),
                       "R3"),
            1);
}

TEST(LintR3, TestsMayPinSeeds) {
  EXPECT_EQ(count_rule(lint_source("tests/test_x.cpp", "Rng rng(42);\n"),
                       "R3"),
            0);
}

TEST(LintR3, RngHeaderIsAllowlisted) {
  EXPECT_EQ(count_rule(lint_source("src/util/rng.h",
                                   "explicit Rng(std::uint64_t seed = "
                                   "0x9e3779b97f4a7c15ULL) noexcept;\n"),
                       "R3"),
            0);
}

// --- R4 ------------------------------------------------------------------

TEST(LintR4, FlagsPointerKeys) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::map<Protocol*, int> rank;\n"),
                       "R4"),
            1);
  EXPECT_EQ(count_rule(lint_source("tests/t.cpp",
                                   "std::set<const Node*> seen;\n"),
                       "R4"),
            1);
}

TEST(LintR4, PointerValuesAreFine) {
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::map<int, Protocol*> by_id;\n"),
                       "R4"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/x.cpp",
                                   "std::vector<Protocol*> protocols;\n"),
                       "R4"),
            0);
}

// --- R5 ------------------------------------------------------------------

TEST(LintR5, FlagsUninitializedScalarMember) {
  const std::string text =
      "struct Stats {\n"
      "  std::int64_t slots = 0;\n"
      "  std::int64_t broadcasts;\n"
      "  double ratio;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/trace.h", text), "R5"), 2);
  // Same text outside the serialization-header scope: silent.
  EXPECT_EQ(count_rule(lint_source("src/core/cogcast.h", text), "R5"), 0);
}

TEST(LintR5, InitializedAndNonScalarMembersPass) {
  const std::string text =
      "struct Stats {\n"
      "  std::int64_t slots = 0;\n"
      "  Message msg{};\n"
      "  std::string name;\n"
      "  std::vector<int> values;\n"
      "  std::int64_t energy() const;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/trace.h", text), "R5"), 0);
}

TEST(LintR5, PrivateClassDetailsAreSkipped) {
  const std::string text =
      "struct Recorder {\n"
      "  int fields = 0;\n"
      " private:\n"
      "  bool armed;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/recorder.h", text), "R5"), 0);
}

// --- R6 ------------------------------------------------------------------

TEST(LintR6, FlagsFloatLiteralEquality) {
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (denom == 0.0) return fit;\n"),
                       "R6"),
            1);
  EXPECT_EQ(count_rule(lint_source("bench/bench_x.cpp",
                                   "bool base = q != 1.5;\n"),
                       "R6"),
            1);
}

TEST(LintR6, IntegerEqualityAndOtherScopesPass) {
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (count == 0) return;\n"),
                       "R6"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/core/cogcast.cpp",
                                   "if (gamma == 4.0) tune();\n"),
                       "R6"),
            0);
  EXPECT_EQ(count_rule(lint_source("src/util/stats.cpp",
                                   "if (a <= 0.5) return;\n"),
                       "R6"),
            0);
}

// --- LINT.json + baseline ------------------------------------------------

std::vector<LintFinding> sample_findings() {
  return lint_source("src/core/x.cpp",
                     "int a = std::rand();\n"
                     "std::unordered_set<int> seen;\n");
}

TEST(LintJson, DeterministicAndParseable) {
  const auto findings = sample_findings();
  ASSERT_GE(findings.size(), 2u);
  const std::string one = findings_to_json(findings);
  const std::string two = findings_to_json(findings);
  EXPECT_EQ(one, two);
  std::string error;
  const auto doc = parse_json(one, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* list = doc->find("findings");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items().size(), findings.size());
  const JsonValue* counts = doc->find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->find("total")->as_number(),
            static_cast<double>(findings.size()));
}

TEST(LintJson, SortedByFileLineRule) {
  std::vector<LintFinding> findings = sample_findings();
  std::reverse(findings.begin(), findings.end());
  const std::string out = findings_to_json(findings);
  EXPECT_LT(out.find("std::rand"), out.find("unordered_set"));
}

TEST(LintBaseline, RoundTripMasksKnownFindings) {
  std::vector<LintFinding> findings = sample_findings();
  const std::string json = findings_to_json(findings);
  std::vector<std::string> keys;
  std::string error;
  ASSERT_TRUE(parse_baseline(json, &keys, &error)) << error;
  EXPECT_EQ(keys.size(), findings.size());
  EXPECT_EQ(apply_baseline(findings, keys),
            static_cast<int>(findings.size()));
  for (const LintFinding& f : findings) EXPECT_TRUE(f.baselined);
}

TEST(LintBaseline, LineNumberShiftsDoNotUnmask) {
  // Baseline captured at one line number still matches after unrelated
  // lines are inserted above the site (keys ignore line numbers).
  const auto before = lint_source("src/x.cpp", "int a = std::rand();\n");
  const std::string json = findings_to_json(before);
  std::vector<std::string> keys;
  ASSERT_TRUE(parse_baseline(json, &keys, nullptr));
  auto after =
      lint_source("src/x.cpp", "int pad = 0;\n\nint a = std::rand();\n");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].line, 3);
  EXPECT_EQ(apply_baseline(after, keys), 1);
}

TEST(LintBaseline, NewFindingsStayActive) {
  const auto before = lint_source("src/x.cpp", "int a = std::rand();\n");
  std::vector<std::string> keys;
  ASSERT_TRUE(parse_baseline(findings_to_json(before), &keys, nullptr));
  auto after = lint_source("src/x.cpp",
                           "int a = std::rand();\nsrand(9);\n");
  apply_baseline(after, keys);
  int active = 0;
  for (const LintFinding& f : after)
    if (!f.baselined && !f.suppressed) ++active;
  EXPECT_EQ(active, 1);  // the new srand site
}

TEST(LintBaseline, RejectsMalformedDocuments) {
  std::vector<std::string> keys;
  std::string error;
  EXPECT_FALSE(parse_baseline("not json", &keys, &error));
  EXPECT_FALSE(parse_baseline("{\"no_findings\": 1}", &keys, &error));
}

}  // namespace
}  // namespace cogradio
