# Shard-invariance check for `cograd bench`: the merged manifest must be
# byte-identical no matter how many resolve-phase shards the slot engine
# ran with (the sim/network.h contract — sharding is an execution
# strategy, never a model change; see docs/DETERMINISM.md).
#
# Invoked by ctest as:
#   cmake -DCOGRAD=<path-to-cograd> -P bench_shards_diff.cmake
foreach(shards 1 4)
  execute_process(
    COMMAND ${COGRAD} bench --shards ${shards} --out BENCH_shards${shards}.json
    RESULT_VARIABLE result
    OUTPUT_QUIET)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "cograd bench --shards ${shards} failed (${result})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files BENCH_shards1.json
          BENCH_shards4.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "BENCH_all.json differs between --shards 1 and --shards 4")
endif()
