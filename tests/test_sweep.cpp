// Tests for the deterministic parallel sweep runner (util/sweep.h).
//
// The load-bearing property: per-trial seeds depend only on
// (base_seed, trial_index), and each trial writes only its own slot — so
// the samples (and hence every bench median) are bit-identical for any
// --jobs value and any thread scheduling.
#include "util/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/stats.h"

namespace cogradio {
namespace {

TEST(TrialRng, DependsOnlyOnSeedAndIndex) {
  Rng a = trial_rng(42, 7);
  Rng b = trial_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());

  // Different indices (and different base seeds) give distinct streams.
  EXPECT_NE(trial_rng(42, 0)(), trial_rng(42, 1)());
  EXPECT_NE(trial_rng(42, 0)(), trial_rng(43, 0)());
}

TEST(TrialRng, IndependentOfCallOrder) {
  // Drawing trial 5's stream must not be affected by whether trial 3's
  // stream was materialized first (no shared parent state).
  Rng direct = trial_rng(9, 5);
  (void)trial_rng(9, 3)();
  Rng after = trial_rng(9, 5);
  EXPECT_EQ(direct(), after());
}

TEST(TrialRng, GoldenFirstDraws) {
  // Hardcoded first draws for fixed (seed, trial): reproducer lines like
  // `cograd check --seed S --trial T` are only stable across releases if
  // the trial_rng stream itself never changes. A failure here means every
  // recorded counterexample in old CI artifacts silently re-keys.
  struct Golden {
    std::uint64_t seed, trial, first, second, third;
  };
  constexpr Golden kGolden[] = {
      {1, 0, 2804640325252774558ULL, 16190961711124725559ULL,
       6578084084341536503ULL},
      {1, 1, 75971214043466617ULL, 5396707611544416849ULL,
       16559844156089112850ULL},
      {1, 63, 2373272648074372712ULL, 9262549574672641479ULL,
       9179646535451299553ULL},
      {42, 7, 4715593843781916898ULL, 3618685208032465545ULL,
       15596554769836861414ULL},
      {0xDEADBEEF, 100, 3981957162010260748ULL, 14910390044440445536ULL,
       13969485694391760878ULL},
  };
  for (const Golden& g : kGolden) {
    Rng rng = trial_rng(g.seed, g.trial);
    EXPECT_EQ(rng(), g.first) << "seed " << g.seed << " trial " << g.trial;
    EXPECT_EQ(rng(), g.second) << "seed " << g.seed << " trial " << g.trial;
    EXPECT_EQ(rng(), g.third) << "seed " << g.seed << " trial " << g.trial;
  }
  // Derived draws are golden too (below/between reduce the same stream).
  EXPECT_EQ(trial_rng(1, 0).below(100), 15u);
  EXPECT_EQ(trial_rng(42, 7).below(100), 25u);
  EXPECT_EQ(trial_rng(1, 1).between(10, 20), 10);
}

TEST(ParallelSweep, RunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 4}) {
    ParallelSweep pool(jobs);
    std::vector<std::atomic<int>> hits(100);
    pool.run(100, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelSweep, ZeroJobsUsesHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_EQ(resolve_jobs(3), 3);
  ParallelSweep pool(0);
  EXPECT_GE(pool.jobs(), 1);
  std::atomic<int> count{0};
  pool.run(17, [&](int) { count++; });
  EXPECT_EQ(count.load(), 17);
}

TEST(ParallelSweep, PoolIsReusableAcrossRuns) {
  ParallelSweep pool(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> count{0};
    pool.run(25, [&](int) { count++; });
    EXPECT_EQ(count.load(), 25);
  }
  pool.run(0, [&](int) { FAIL() << "empty run must not invoke the body"; });
}

TEST(SweepTrials, BitIdenticalAcrossJobCounts) {
  const auto body = [](Rng& rng) -> std::optional<double> {
    // A trial that consumes a variable number of draws and sometimes
    // produces no sample — the shapes real benches have.
    const std::uint64_t x = rng();
    double acc = 0;
    for (std::uint64_t i = 0; i < (x % 7); ++i)
      acc += static_cast<double>(rng() % 1000);
    if (x % 5 == 0) return std::nullopt;
    return acc;
  };
  const std::vector<double> serial = sweep_trials(200, 77, 1, body);
  const std::vector<double> par2 = sweep_trials(200, 77, 2, body);
  const std::vector<double> par4 = sweep_trials(200, 77, 4, body);
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par4);
  // Medians (what the benches report) are therefore identical too.
  EXPECT_EQ(summarize(serial).median, summarize(par4).median);
  // Some trials were filtered, none were lost.
  EXPECT_LT(serial.size(), 200u);
  EXPECT_GT(serial.size(), 100u);
}

TEST(SweepTrials, SamplesKeepTrialOrder) {
  // fn returns its own trial index; filtered output must stay sorted.
  const std::vector<double> samples = sweep_trials(
      64, 5, 4, [](Rng& rng) { return static_cast<double>(rng() % 3); });
  EXPECT_EQ(samples.size(), 64u);
  const std::vector<double> again = sweep_trials(
      64, 5, 1, [](Rng& rng) { return static_cast<double>(rng() % 3); });
  EXPECT_EQ(samples, again);
}

}  // namespace
}  // namespace cogradio
