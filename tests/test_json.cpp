// util/json hardening tests: the recursion-depth cap and the failure modes
// a line-framed socket reader leans on (truncated input, trailing garbage).
// The serve daemon (src/serve) parses untrusted peer bytes through
// parse_json, so "reject cleanly" here means: nullopt, a diagnostic with a
// byte offset, and no crash — never a stack overflow.
#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace cogradio {
namespace {

std::string nested_arrays(int depth) {
  std::string s;
  s.reserve(static_cast<std::size_t>(depth) * 2 + 1);
  for (int i = 0; i < depth; ++i) s.push_back('[');
  s.push_back('1');
  for (int i = 0; i < depth; ++i) s.push_back(']');
  return s;
}

std::string nested_objects(int depth) {
  std::string s;
  for (int i = 0; i < depth; ++i) s += "{\"k\":";
  s += "0";
  for (int i = 0; i < depth; ++i) s.push_back('}');
  return s;
}

TEST(JsonDepth, AcceptsNestingUpToTheLimit) {
  const auto doc = parse_json(nested_arrays(kJsonMaxDepth));
  ASSERT_TRUE(doc.has_value());
  const JsonValue* v = &*doc;
  for (int i = 0; i < kJsonMaxDepth; ++i) {
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->items().size(), 1u);
    v = &v->items()[0];
  }
  EXPECT_TRUE(v->is_number());
}

TEST(JsonDepth, RejectsNestingBeyondTheLimit) {
  std::string error;
  EXPECT_FALSE(parse_json(nested_arrays(kJsonMaxDepth + 1), &error));
  EXPECT_NE(error.find("nesting depth exceeds limit"), std::string::npos)
      << error;
}

TEST(JsonDepth, RejectsDeepObjectsToo) {
  std::string error;
  EXPECT_TRUE(parse_json(nested_objects(kJsonMaxDepth)));
  EXPECT_FALSE(parse_json(nested_objects(kJsonMaxDepth + 1), &error));
  EXPECT_NE(error.find("nesting depth exceeds limit"), std::string::npos);
}

// The attack shape: an open-bracket flood with no closers. Must fail at the
// depth cap, not recurse once per byte.
TEST(JsonDepth, SurvivesOpenBracketFlood) {
  const std::string flood(1 << 20, '[');
  std::string error;
  EXPECT_FALSE(parse_json(flood, &error));
  EXPECT_NE(error.find("nesting depth exceeds limit"), std::string::npos);
  EXPECT_FALSE(parse_json(std::string(1 << 20, '{'), &error));
}

// Depth is consumed by nesting, not by breadth: a long flat array at depth
// two is fine no matter how many elements it has.
TEST(JsonDepth, BreadthIsNotDepth) {
  std::string wide = "[";
  for (int i = 0; i < 10'000; ++i) wide += "[0],";
  wide += "[0]]";
  EXPECT_TRUE(parse_json(wide).has_value());
}

TEST(JsonDepth, CustomLimitIsHonored) {
  std::string error;
  EXPECT_TRUE(parse_json(nested_arrays(4), &error, 4));
  EXPECT_FALSE(parse_json(nested_arrays(5), &error, 4));
  // Sibling containers after a deep branch closed are fine: depth unwinds.
  EXPECT_TRUE(parse_json("[[[[1]]],[[2]]]", &error, 4));
}

// Every proper prefix of a valid document must fail cleanly — the shape a
// line-framed reader sees when a peer's connection drops mid-frame.
TEST(JsonTruncation, AllPrefixesOfAValidDocumentFail) {
  const std::string doc =
      R"({"type":"submit","job":{"n":32,"pattern":"shared-core","xs":[1,2.5,true,null,"s\n"]}})";
  ASSERT_TRUE(parse_json(doc).has_value());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    std::string error;
    EXPECT_FALSE(parse_json(doc.substr(0, len), &error))
        << "prefix of length " << len << " parsed";
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonTruncation, TruncatedEscapesAndLiterals) {
  for (const char* text :
       {"\"abc", "\"ab\\", "\"ab\\u12", "tru", "fals", "nul", "-", "1.",
        "1e", "1e+", "[1,", "{\"k\"", "{\"k\":"}) {
    std::string error;
    EXPECT_FALSE(parse_json(text, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonTrailingGarbage, RejectedWithOffset) {
  for (const char* text :
       {"{} x", "1 2", "[1] ]", "null,", "\"a\"\"b\"", "{}{}"}) {
    std::string error;
    EXPECT_FALSE(parse_json(text, &error)) << text;
    EXPECT_NE(error.find("trailing characters"), std::string::npos) << text;
  }
  // Trailing whitespace (incl. the newline a line-framed read strips or
  // leaves behind) is not garbage.
  EXPECT_TRUE(parse_json("{\"a\": 1} \n").has_value());
  EXPECT_TRUE(parse_json("42\n").has_value());
}

TEST(JsonTrailingGarbage, EmbeddedNulIsGarbageNotTerminator) {
  std::string text = "{}";
  text.push_back('\0');
  text += "{}";
  std::string error;
  EXPECT_FALSE(parse_json(text, &error));
  EXPECT_NE(error.find("trailing characters"), std::string::npos);
}

}  // namespace
}  // namespace cogradio
