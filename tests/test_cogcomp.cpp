// Integration + property tests for CogComp (Section 5 / Theorem 10).
//
// White-box runs expose every node so phase products can be checked against
// oracles reconstructed from CogCast's ground-truth state: cluster
// membership from (informed slot, physical informed channel), informer
// knowledge from the distribution tree, mediator uniqueness per channel,
// and the exact aggregate at the source.
#include "core/cogcomp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "core/runtime.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

struct WhiteBoxRun {
  std::vector<std::unique_ptr<CogCompNode>> nodes;
  std::unique_ptr<ChannelAssignment> assignment;
  Slot slots = 0;
  bool all_done = false;
  CogCompParams params;
};

WhiteBoxRun run_whitebox(const std::string& pattern, int n, int c, int k,
                         AggOp op, std::uint64_t seed) {
  WhiteBoxRun run;
  run.params = {n, c, k, /*gamma=*/4.0};
  run.assignment =
      make_assignment(pattern, n, c, k, LabelMode::LocalRandom, Rng(seed));
  const auto values = make_values(n, seed ^ 0xABCD, -50, 50);
  Rng seeder(seed * 7919 + 3);
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    run.nodes.push_back(std::make_unique<CogCompNode>(
        u, run.params, u == 0, values[static_cast<std::size_t>(u)],
        Aggregator(op), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(run.nodes.back().get());
  }
  NetworkOptions net;
  net.seed = seed + 99;
  Network network(*run.assignment, protocols, net);
  run.slots = network.run(run.params.max_slots());
  run.all_done = network.all_done();
  return run;
}

// Oracle: physical channel on which node u was informed (static patterns).
Channel informed_channel(const WhiteBoxRun& run, NodeId u) {
  const auto& node = *run.nodes[static_cast<std::size_t>(u)];
  return run.assignment->global_channel(u, node.informed_label());
}

using Param = std::tuple<std::string, int, int, int, AggOp>;

class CogCompSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CogCompSweep, AggregatesExactlyAndTerminates) {
  const auto& [pattern, n, c, k, op] = GetParam();
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    CogCompParams params{n, c, k, 4.0};
    auto assignment =
        make_assignment(pattern, n, c, k, LabelMode::LocalRandom, Rng(seed));
    const auto values = make_values(n, seed ^ 0xF00D, -1000, 1000);
    CogCompRunConfig config;
    config.params = params;
    config.seed = seed;
    config.op = op;
    const AggregationOutcome out = run_cogcomp(*assignment, values, config);
    ASSERT_TRUE(out.completed)
        << pattern << " n=" << n << " c=" << c << " k=" << k << " seed=" << seed;
    EXPECT_EQ(out.result, out.expected);
    EXPECT_EQ(out.covered, n);
    // Theorem 10: phase 4 takes O(n) slots — at most 3(n+1) steps here.
    EXPECT_LE(out.phase4_slots, 3 * (static_cast<Slot>(n) + 2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CogCompSweep,
    ::testing::Values(
        Param{"shared-core", 12, 6, 2, AggOp::Sum},
        Param{"shared-core", 40, 8, 3, AggOp::Sum},
        Param{"shared-core", 40, 8, 3, AggOp::CollectAll},
        Param{"partitioned", 16, 6, 2, AggOp::Min},
        Param{"partitioned", 24, 5, 1, AggOp::Max},
        Param{"pigeonhole", 20, 8, 4, AggOp::Count},
        Param{"pigeonhole", 32, 10, 5, AggOp::Sum},
        Param{"identity", 24, 6, 6, AggOp::Sum},
        Param{"shared-core", 6, 12, 3, AggOp::Sum},   // c > n case
        Param{"pigeonhole", 4, 16, 8, AggOp::CollectAll}),
    [](const auto& info) {
      std::string p = std::get<0>(info.param);
      for (auto& ch : p)
        if (ch == '-') ch = '_';
      return p + "_n" + std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param)) + "_" +
             to_string(std::get<4>(info.param));
    });

TEST(CogComp, SingleNodeDegenerates) {
  IdentityAssignment assignment(1, 2, LabelMode::Global, Rng(1));
  CogCompRunConfig config;
  config.params = {1, 2, 2};
  const std::vector<Value> values{17};
  const auto out = run_cogcomp(assignment, values, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.result, 17);
}

TEST(CogComp, TwoNodes) {
  SharedCoreAssignment assignment(2, 4, 2, LabelMode::LocalRandom, Rng(2));
  CogCompRunConfig config;
  config.params = {2, 4, 2};
  const std::vector<Value> values{10, 32};
  const auto out = run_cogcomp(assignment, values, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.result, 42);
}

TEST(CogComp, NonZeroSource) {
  SharedCoreAssignment assignment(10, 6, 2, LabelMode::LocalRandom, Rng(3));
  CogCompRunConfig config;
  config.params = {10, 6, 2};
  config.source = 4;
  const auto values = make_values(10, 77);
  const auto out = run_cogcomp(assignment, values, config);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.result, out.expected);
}

TEST(CogComp, ClusterCensusMatchesOracle) {
  const auto run = run_whitebox("shared-core", 30, 8, 3, AggOp::Sum, 11);
  ASSERT_TRUE(run.all_done);

  // Oracle clusters: group non-source informed nodes by informed slot. Two
  // nodes informed in the same slot are in the same cluster iff they were
  // informed by the same physical broadcast, i.e. share the same parent.
  std::map<std::pair<Slot, NodeId>, std::vector<NodeId>> oracle;
  for (NodeId u = 1; u < 30; ++u) {
    const auto& node = *run.nodes[static_cast<std::size_t>(u)];
    ASSERT_TRUE(node.informed());
    oracle[{node.informed_slot(), node.parent()}].push_back(u);
  }
  for (const auto& [key, members] : oracle) {
    for (NodeId u : members) {
      EXPECT_EQ(run.nodes[static_cast<std::size_t>(u)]->my_cluster_size(),
                static_cast<std::int64_t>(members.size()))
          << "node " << u << " r=" << key.first;
    }
  }
}

TEST(CogComp, InformerKnowledgeMatchesOracle) {
  const auto run = run_whitebox("pigeonhole", 26, 8, 4, AggOp::Sum, 13);
  ASSERT_TRUE(run.all_done);

  // Oracle: informer v of cluster (r, parent=v) must list exactly the
  // clusters derived from the distribution tree, with exact sizes.
  std::map<NodeId, std::map<Slot, std::int64_t>> oracle;  // informer -> r -> size
  for (NodeId u = 1; u < 26; ++u) {
    const auto& node = *run.nodes[static_cast<std::size_t>(u)];
    oracle[node.parent()][node.informed_slot()] += 1;
  }
  for (NodeId v = 0; v < 26; ++v) {
    const auto& clusters = run.nodes[static_cast<std::size_t>(v)]->informed_clusters();
    const auto it = oracle.find(v);
    const std::size_t expected_count = it == oracle.end() ? 0 : it->second.size();
    ASSERT_EQ(clusters.size(), expected_count) << "informer " << v;
    Slot prev = std::numeric_limits<Slot>::max();
    for (const auto& cl : clusters) {
      EXPECT_LT(cl.r, prev) << "descending r order violated";
      prev = cl.r;
      EXPECT_EQ(cl.size, it->second.at(cl.r));
    }
  }
}

TEST(CogComp, MediatorsAreUniquePerChannelAndCorrect) {
  const auto run = run_whitebox("shared-core", 28, 6, 2, AggOp::Sum, 17);
  ASSERT_TRUE(run.all_done);

  // Group informed non-source nodes by the *physical* channel on which
  // they were informed; per channel the mediator must be exactly the
  // min-id member of the latest-informed cluster (Lemma 7b).
  std::map<Channel, std::vector<NodeId>> by_channel;
  for (NodeId u = 1; u < 28; ++u) {
    const auto& node = *run.nodes[static_cast<std::size_t>(u)];
    if (!node.informed()) continue;
    by_channel[informed_channel(run, u)].push_back(u);
  }
  for (const auto& [channel, members] : by_channel) {
    (void)channel;
    // Census agreement: everyone on the channel computed the same census.
    const auto& census = run.nodes[static_cast<std::size_t>(members.front())]
                             ->channel_census();
    ASSERT_FALSE(census.empty());
    for (NodeId u : members)
      EXPECT_EQ(run.nodes[static_cast<std::size_t>(u)]->channel_census(),
                census);
    const Slot r_max = census.front().first;
    // Mediator: min id among members informed at r_max.
    NodeId expected = kNoNode;
    for (NodeId u : members) {
      if (run.nodes[static_cast<std::size_t>(u)]->informed_slot() == r_max)
        expected = expected == kNoNode ? u : std::min(expected, u);
    }
    int mediators = 0;
    for (NodeId u : members)
      if (run.nodes[static_cast<std::size_t>(u)]->is_mediator()) {
        ++mediators;
        EXPECT_EQ(u, expected);
      }
    EXPECT_EQ(mediators, 1);
  }
}

TEST(CogComp, EveryNonSourceNodeDelivers) {
  const auto run = run_whitebox("partitioned", 22, 6, 2, AggOp::Sum, 19);
  ASSERT_TRUE(run.all_done);
  for (NodeId u = 1; u < 22; ++u)
    EXPECT_TRUE(run.nodes[static_cast<std::size_t>(u)]->delivered())
        << "node " << u;
  EXPECT_TRUE(run.nodes[0]->complete());
}

TEST(CogComp, CollectAllGathersEveryValueExactlyOnce) {
  const auto run = run_whitebox("shared-core", 18, 6, 3, AggOp::CollectAll, 23);
  ASSERT_TRUE(run.all_done);
  const auto& items = run.nodes[0]->accumulated().items;
  ASSERT_EQ(items.size(), 18u);
  std::set<NodeId> ids;
  for (const auto& [id, value] : items) ids.insert(id);
  EXPECT_EQ(ids.size(), 18u);
}

TEST(CogComp, PhaseBoundariesAreConsistent) {
  const CogCompParams p{32, 8, 2, 4.0};
  EXPECT_EQ(p.phase1_end(), (CogCastParams{32, 8, 2, 4.0}).horizon());
  EXPECT_EQ(p.phase2_end(), p.phase1_end() + 32);
  EXPECT_EQ(p.phase3_end(), p.phase2_end() + p.phase1_end());
  EXPECT_GT(p.max_slots(), p.phase3_end());
}

TEST(CogComp, ManySeedsNeverMiscount) {
  // Aggregation correctness is the paper's headline guarantee; hammer it.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SharedCoreAssignment assignment(20, 6, 2, LabelMode::LocalRandom,
                                    Rng(seed));
    CogCompRunConfig config;
    config.params = {20, 6, 2, 4.0};
    config.seed = seed;
    const auto values = make_values(20, seed, -10, 10);
    const auto out = run_cogcomp(assignment, values, config);
    ASSERT_TRUE(out.completed) << "seed " << seed;
    EXPECT_EQ(out.result, out.expected) << "seed " << seed;
  }
}

// Property sweep: source position must not matter — exercise every source
// id on a moderate topology.
class CogCompSourceSweep : public ::testing::TestWithParam<int> {};

TEST_P(CogCompSourceSweep, AnySourceAggregatesExactly) {
  const NodeId source = GetParam();
  const int n = 14, c = 6, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                  Rng(500 + static_cast<std::uint64_t>(source)));
  CogCompRunConfig config;
  config.params = {n, c, k, 4.0};
  config.seed = 900 + static_cast<std::uint64_t>(source);
  config.source = source;
  const auto values = make_values(n, 77 + static_cast<std::uint64_t>(source));
  const auto out = run_cogcomp(assignment, values, config);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.result, out.expected);
}

INSTANTIATE_TEST_SUITE_P(AllSources, CogCompSourceSweep,
                         ::testing::Range(0, 14));

TEST(CogComp, UnmediatedAblationStillExact) {
  // Phase 4 without mediators (E27): slower under contention but exact.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SharedCoreAssignment assignment(18, 6, 2, LabelMode::LocalRandom,
                                    Rng(seed));
    CogCompRunConfig config;
    config.params = {18, 6, 2, 4.0};
    config.params.mediated = false;
    config.seed = seed;
    const auto values = make_values(18, seed, -100, 100);
    const auto out = run_cogcomp(assignment, values, config);
    ASSERT_TRUE(out.completed) << "seed " << seed;
    EXPECT_EQ(out.result, out.expected) << "seed " << seed;
  }
}

TEST(CogComp, UnmediatedSlowerUnderSharedChannelContention) {
  // On the partitioned topology with small k, many clusters share the few
  // overlap channels — the regime the mediator exists for.
  double med_total = 0, unmed_total = 0;
  constexpr int kTrials = 10;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const int n = 40, c = 8, k = 1;
    const auto values = make_values(n, seed);
    {
      PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                       Rng(seed));
      CogCompRunConfig config;
      config.params = {n, c, k, 4.0};
      config.seed = seed;
      const auto out = run_cogcomp(assignment, values, config);
      ASSERT_TRUE(out.completed);
      med_total += static_cast<double>(out.phase4_slots);
    }
    {
      PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                       Rng(seed));
      CogCompRunConfig config;
      config.params = {n, c, k, 4.0};
      config.params.mediated = false;
      config.seed = seed;
      const auto out = run_cogcomp(assignment, values, config);
      ASSERT_TRUE(out.completed);
      unmed_total += static_cast<double>(out.phase4_slots);
    }
  }
  EXPECT_GT(unmed_total, med_total);
}

TEST(CogComp, Phase4MediatorInvariantsHoldEveryStep) {
  // Step the network through phase 4 under an observer that checks the
  // coordination invariants of Section 5 on every slot:
  //   poll slots:  at most one MediatorPoll per physical channel, and on
  //                a given channel the polled r never increases;
  //   data slots:  every AggData matches the last poll on its channel;
  //   ack slots:   at most one Ack per channel, naming a node that sent
  //                AggData there in the previous slot.
  const int n = 26, c = 6, k = 2;
  const CogCompParams params{n, c, k, 4.0};
  PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(61));
  Rng seeder(62);
  const auto values = make_values(n, 63);
  std::vector<std::unique_ptr<CogCompNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCompNode>(
        u, params, u == 0, values[static_cast<std::size_t>(u)],
        Aggregator(AggOp::Sum), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  NetworkOptions opt;
  opt.seed = 64;
  Network net(assignment, protocols, opt);

  std::map<Channel, Slot> last_poll_r;        // per channel, latest poll
  std::map<Channel, Slot> poll_this_slot;     // polls seen in current slot
  std::map<Channel, std::set<NodeId>> sent_last_data_slot;
  std::map<Channel, std::set<NodeId>> sent_this_slot;

  // Winner contents are not visible to the observer, so nodes expose them
  // through a per-slot probe: reconstruct from the protocols' actions via
  // a second pass is impossible post-hoc; instead hook the messages at
  // the source — the observer sees tx_success and we re-derive message
  // type from the phase-4 slot offset, which the schedule fixes.
  net.set_observer([&](Slot slot, std::span<const ResolvedAction> acts) {
    if (slot <= params.phase3_end()) return;
    const int off = static_cast<int>((slot - params.phase3_end() - 1) % 3);
    if (off == 0) {
      poll_this_slot.clear();
      for (const auto& a : acts) {
        if (a.mode != Mode::Broadcast || !a.tx_success) continue;
        // Slot-1 broadcasters are mediators announcing r'.
        ASSERT_FALSE(poll_this_slot.contains(a.channel))
            << "two polls on channel " << a.channel << " slot " << slot;
        poll_this_slot[a.channel] = 1;
        // Monotone non-increasing polled r is checked indirectly below
        // via the drain order; here we record the poll's existence.
        last_poll_r[a.channel] = slot;
      }
    } else if (off == 1) {
      sent_this_slot.clear();
      for (const auto& a : acts) {
        if (a.mode != Mode::Broadcast) continue;
        // Data-slot broadcasters must be on a channel that was polled in
        // the immediately preceding slot.
        EXPECT_TRUE(last_poll_r.contains(a.channel) &&
                    last_poll_r[a.channel] == slot - 1)
            << "unpolled AggData on channel " << a.channel << " slot " << slot;
        sent_this_slot[a.channel].insert(a.node);
      }
      sent_last_data_slot = sent_this_slot;
    } else {
      std::set<Channel> acked;
      for (const auto& a : acts) {
        if (a.mode != Mode::Broadcast) continue;
        EXPECT_TRUE(acked.insert(a.channel).second)
            << "two acks on channel " << a.channel;
        // The acking receiver must have had senders on its channel.
        EXPECT_FALSE(sent_last_data_slot[a.channel].empty())
            << "ack without data on channel " << a.channel;
      }
    }
  });

  net.run(params.max_slots());
  ASSERT_TRUE(nodes[0]->complete());
  EXPECT_EQ(Aggregator(AggOp::Sum).result(nodes[0]->accumulated()),
            Aggregator(AggOp::Sum).expected(values));
}

TEST(CogComp, ExtremeValuesSurviveMinMax) {
  // Min/Max must handle values at the representable extremes (the
  // combiner identities are the opposite extremes; a naive +/- sentinel
  // would overflow).
  const int n = 10, c = 6, k = 2;
  std::vector<Value> values(n, 0);
  values[3] = std::numeric_limits<Value>::min();
  values[7] = std::numeric_limits<Value>::max();
  for (AggOp op : {AggOp::Min, AggOp::Max}) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(31));
    CogCompRunConfig config;
    config.params = {n, c, k, 4.0};
    config.seed = 32;
    config.op = op;
    const auto out = run_cogcomp(assignment, values, config);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.result, op == AggOp::Min
                              ? std::numeric_limits<Value>::min()
                              : std::numeric_limits<Value>::max());
  }
}

TEST(CogComp, ModerateScaleStress) {
  // One larger instance end-to-end: n = 512 on 16 channels.
  const int n = 512, c = 16, k = 4;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(41));
  CogCompRunConfig config;
  config.params = {n, c, k, 4.0};
  config.seed = 42;
  const auto values = make_values(n, 43, -1000, 1000);
  const auto out = run_cogcomp(assignment, values, config);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.result, out.expected);
  EXPECT_LE(out.phase4_slots, 3 * (static_cast<Slot>(n) + 2));
}

// --- Regressions: defensive ack filtering in the mediator drain ------------
//
// The mediator counts the active cluster's drain by the acks it hears on
// its channel and drops any ack whose round tag doesn't match
// (core/cogcomp.cpp). Under fading, retransmitted and desynchronized acks
// reach mediators out of order; before the filter existed that aborted the
// drain. These tests pin the repaired behavior: stray and duplicate acks
// may cost liveness (the run reports incompleteness) but never abort the
// process, never hang it, and never yield a wrong completed aggregate.

TEST(CogComp, FadingNeverAbortsAndNeverMiscounts) {
  for (const double loss : {0.15, 0.4}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SharedCoreAssignment assignment(16, 6, 2, LabelMode::LocalRandom,
                                      Rng(seed));
      CogCompRunConfig config;
      config.params = {16, 6, 2, 4.0};
      config.seed = seed * 31 + 7;
      config.net.loss_prob = loss;
      const auto values = make_values(16, seed ^ 0x5A5A, -40, 40);
      const auto out = run_cogcomp(assignment, values, config);
      // Termination within the slot budget is unconditional...
      EXPECT_LE(out.slots, config.params.max_slots())
          << "loss " << loss << " seed " << seed;
      // ...and a completed run is exact even when most acks faded away.
      if (out.completed)
        EXPECT_EQ(out.result, out.expected)
            << "loss " << loss << " seed " << seed;
    }
  }
}

// In-band saboteur: broadcasts bogus and duplicate Ack messages on random
// labels for the whole run, targeting random rounds and node ids.
class AckSpammer : public Protocol {
 public:
  AckSpammer(int c, int n, Slot horizon, Rng rng)
      : c_(c), n_(n), horizon_(horizon), rng_(rng) {}

  Action on_slot(Slot) override {
    if (rng_.below(3) != 0) return Action::idle();
    Message m;
    m.type = MessageType::Ack;
    if (last_.type == MessageType::Ack && rng_.below(4) == 0) {
      m = last_;  // exact duplicate of the previous spam ack
    } else {
      m.r = rng_.between(1, std::max<Slot>(2, horizon_));
      m.a = static_cast<std::int64_t>(
          rng_.below(static_cast<std::uint64_t>(n_)));
    }
    last_ = m;
    return Action::broadcast(
        static_cast<LocalLabel>(rng_.below(static_cast<std::uint64_t>(c_))),
        m);
  }
  void on_feedback(Slot, const SlotResult&) override {}
  bool done() const override { return false; }

 private:
  int c_;
  int n_;
  Slot horizon_;
  Rng rng_;
  Message last_{};
};

TEST(CogComp, StrayAndDuplicateAcksNeverAbortOrMiscount) {
  for (const double loss : {0.0, 0.15}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const int n = 14;  // CogComp participants; node n is the saboteur
      SharedCoreAssignment assignment(n + 1, 6, 2, LabelMode::LocalRandom,
                                      Rng(seed));
      const CogCompParams params{n, 6, 2, 4.0};
      const auto values = make_values(n, seed * 13 + 5, -30, 30);
      Rng seeder(seed * 7919 + 3);
      std::vector<std::unique_ptr<CogCompNode>> nodes;
      std::vector<Protocol*> protocols;
      for (NodeId u = 0; u < n; ++u) {
        nodes.push_back(std::make_unique<CogCompNode>(
            u, params, u == 0, values[static_cast<std::size_t>(u)],
            Aggregator(AggOp::Sum),
            seeder.split(static_cast<std::uint64_t>(u))));
        protocols.push_back(nodes.back().get());
      }
      AckSpammer spammer(6, n, params.max_slots(), seeder.split(999));
      protocols.push_back(&spammer);
      NetworkOptions opt;
      opt.seed = seed + 99;
      opt.loss_prob = loss;
      Network net(assignment, protocols, opt);
      // The saboteur never finishes, so run() stops at the slot budget;
      // the regression is that no node aborts or wedges before that.
      const Slot slots = net.run(params.max_slots());
      EXPECT_LE(slots, params.max_slots());
      const auto& source = *nodes[0];
      if (source.complete()) {
        Value expected = 0;
        for (const Value v : values) expected += v;
        EXPECT_EQ(Aggregator(AggOp::Sum).result(source.accumulated()),
                  expected)
            << "loss " << loss << " seed " << seed;
      }
    }
  }
}

TEST(CogComp, RejectsInvalidConfig) {
  IdentityAssignment assignment(4, 4, LabelMode::Global, Rng(1));
  CogCompRunConfig config;
  config.params = {4, 4, 4};
  const std::vector<Value> three{1, 2, 3};
  EXPECT_THROW(run_cogcomp(assignment, three, config), std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
