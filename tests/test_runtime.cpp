// Tests for the runtime helpers (core/runtime.h).
#include "core/runtime.h"

#include <gtest/gtest.h>

#include "sim/assignment.h"

namespace cogradio {
namespace {

TEST(ValidTree, AcceptsAProperTree) {
  // Tree: 0 (source, slot 0) -> children 1 (slot 1) and 2 (slot 2);
  //       2 -> child 3 (slot 3).
  const std::vector<Slot> informed{0, 1, 2, 3};
  const std::vector<NodeId> parent{kNoNode, 0, 0, 2};
  EXPECT_TRUE(valid_distribution_tree(0, informed, parent));
}

TEST(ValidTree, RejectsUninformedNode) {
  const std::vector<Slot> informed{0, kNoSlot};
  const std::vector<NodeId> parent{kNoNode, 0};
  EXPECT_FALSE(valid_distribution_tree(0, informed, parent));
}

TEST(ValidTree, RejectsParentInformedLater) {
  const std::vector<Slot> informed{0, 5, 3};
  const std::vector<NodeId> parent{kNoNode, 2, 1};  // 2's parent informed at 5 > 3
  EXPECT_FALSE(valid_distribution_tree(0, informed, parent));
}

TEST(ValidTree, RejectsSelfParentCycle) {
  const std::vector<Slot> informed{0, 2, 2};
  const std::vector<NodeId> parent{kNoNode, 2, 1};
  EXPECT_FALSE(valid_distribution_tree(0, informed, parent));
}

TEST(ValidTree, RejectsBadSourceState) {
  const std::vector<Slot> informed{1, 2};
  const std::vector<NodeId> parent{kNoNode, 0};
  EXPECT_FALSE(valid_distribution_tree(0, informed, parent));
  const std::vector<Slot> informed2{0, 2};
  const std::vector<NodeId> parent2{1, 0};
  EXPECT_FALSE(valid_distribution_tree(0, informed2, parent2));
}

TEST(ValidTree, RejectsOutOfRangeParent) {
  const std::vector<Slot> informed{0, 1};
  const std::vector<NodeId> parent{kNoNode, 9};
  EXPECT_FALSE(valid_distribution_tree(0, informed, parent));
}

TEST(MakeValues, DeterministicAndInRange) {
  const auto a = make_values(100, 42, -5, 5);
  const auto b = make_values(100, 42, -5, 5);
  EXPECT_EQ(a, b);
  for (Value v : a) {
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  const auto c = make_values(100, 43, -5, 5);
  EXPECT_NE(a, c);
}

TEST(CollectTrials, RunsTheRequestedNumberWithDistinctSeeds) {
  std::vector<std::uint64_t> seeds;
  const auto samples = collect_trials(5, 1, [&](std::uint64_t seed) {
    seeds.push_back(seed);
    return static_cast<Slot>(seed % 97);
  });
  EXPECT_EQ(samples.size(), 5u);
  std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RunCogCast, ReproducibleGivenSeed) {
  auto once = [](std::uint64_t seed) {
    SharedCoreAssignment assignment(16, 6, 2, LabelMode::LocalRandom, Rng(5));
    CogCastRunConfig config;
    config.params = {16, 6, 2};
    config.seed = seed;
    return run_cogcast(assignment, config).slots;
  };
  EXPECT_EQ(once(9), once(9));
}

TEST(RunCogComp, ReproducibleGivenSeed) {
  auto once = [](std::uint64_t seed) {
    SharedCoreAssignment assignment(12, 6, 2, LabelMode::LocalRandom, Rng(5));
    CogCompRunConfig config;
    config.params = {12, 6, 2};
    config.seed = seed;
    const auto values = make_values(12, 1);
    return run_cogcomp(assignment, values, config).slots;
  };
  EXPECT_EQ(once(3), once(3));
}

TEST(RunCogComp, PhaseBreakdownSumsToTotal) {
  SharedCoreAssignment assignment(20, 6, 2, LabelMode::LocalRandom, Rng(6));
  CogCompRunConfig config;
  config.params = {20, 6, 2};
  const auto values = make_values(20, 2);
  const auto out = run_cogcomp(assignment, values, config);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.phase3_end + out.phase4_slots, out.slots);
  EXPECT_EQ(out.phase2_end - out.phase1_end, 20);  // phase 2 is n slots
}

}  // namespace
}  // namespace cogradio
