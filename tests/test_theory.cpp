// Tests for the closed-form theory calculators (analysis/theory.h).
#include "analysis/theory.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cogradio::theory {
namespace {

TEST(Theory, CogCastShape) {
  // n >= c: (c/k) lg n.
  EXPECT_DOUBLE_EQ(cogcast_slots(256, 16, 4), 4.0 * 8.0);
  // c > n: extra c/n factor.
  EXPECT_DOUBLE_EQ(cogcast_slots(4, 16, 2), 8.0 * 4.0 * 2.0);
  // Monotone: more overlap is never slower.
  EXPECT_LT(cogcast_slots(64, 16, 8), cogcast_slots(64, 16, 2));
}

TEST(Theory, CogCompAddsLinearTerm) {
  EXPECT_DOUBLE_EQ(cogcomp_slots(256, 16, 4), cogcast_slots(256, 16, 4) + 256);
  EXPECT_DOUBLE_EQ(cogcomp_phase4_bound(64), 195.0);
}

TEST(Theory, StrawManShapes) {
  EXPECT_DOUBLE_EQ(rendezvous_broadcast_slots(256, 16, 4), 64.0 * 8.0);
  EXPECT_DOUBLE_EQ(rendezvous_aggregation_slots(8, 16, 4), 512.0);
  // The factor-c separation of Section 1.
  EXPECT_NEAR(rendezvous_broadcast_slots(256, 16, 4) /
                  cogcast_slots(256, 16, 4),
              16.0, 1e-9);
}

TEST(Theory, Lemma11BudgetMatchesAlphaFormula) {
  // beta = 2 -> alpha = 8.
  EXPECT_DOUBLE_EQ(lemma11_budget(16, 8), 16.0 * 16.0 / (8.0 * 8.0));
  // alpha -> 2 as beta -> infinity: budget -> c^2/(2k).
  EXPECT_NEAR(lemma11_budget(1024, 1), 1024.0 * 1024.0 / 2.0, 3000.0);
  EXPECT_THROW(lemma11_budget(8, 5), std::invalid_argument);
}

TEST(Theory, Lemma14AndGap) {
  EXPECT_DOUBLE_EQ(lemma14_budget(48), 16.0);
  EXPECT_DOUBLE_EQ(optimality_gap(256), 8.0);
}

TEST(Theory, Theorem16Exact) {
  EXPECT_DOUBLE_EQ(theorem16_expectation(16, 1), 8.5);
  EXPECT_DOUBLE_EQ(theorem16_expectation(64, 7), 65.0 / 8.0);
}

TEST(Theory, AggregationAndHopping) {
  EXPECT_DOUBLE_EQ(aggregation_lower_bound(96, 4), 24.0);
  // C = k + n(c-k); the paper example c=n^2, k=c-1 gives C/k = (k+n)/k.
  EXPECT_DOUBLE_EQ(hopping_together_slots(4, 16, 15), 19.0 / 15.0);
}

TEST(Theory, BackoffEnvelope) {
  EXPECT_DOUBLE_EQ(backoff_micro_slots(256), 64.0);
  EXPECT_DOUBLE_EQ(backoff_micro_slots(1), 1.0);  // lg clamps at 2 -> 1
}

TEST(Scorecard, PassWindowSemantics) {
  ScoreRow in_window{"x", "ref", 100.0, 150.0, 0.5, 2.0};
  EXPECT_TRUE(in_window.pass());
  ScoreRow below{"x", "ref", 100.0, 40.0, 0.5, 2.0};
  EXPECT_FALSE(below.pass());
  ScoreRow above{"x", "ref", 100.0, 201.0, 0.5, 2.0};
  EXPECT_FALSE(above.pass());
  ScoreRow one_sided{"x", "ref", 100.0, 1e6, 1.0, 1e9};
  EXPECT_TRUE(one_sided.pass());
}

TEST(Scorecard, PrintCountsFailures) {
  std::vector<ScoreRow> rows{{"a", "r", 10.0, 10.0, 0.9, 1.1},
                             {"b", "r", 10.0, 99.0, 0.9, 1.1}};
  EXPECT_EQ(print_scorecard(rows, "test scorecard"), 1);
}

}  // namespace
}  // namespace cogradio::theory
