// Tests for the self-healing run supervisor (core/supervisor.h): epoch
// bounding (deadline, stall window, exponential backoff), restart
// semantics, determinism, and the paper's robustness asymmetry — a churn
// burst leaves CogCast completing in epoch 0 while CogComp needs the
// supervisor's restart.
#include "core/supervisor.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/assignment.h"
#include "sim/fault_engine.h"

namespace cogradio {
namespace {

// Never-terminating idle protocol; progress is whatever the test wires up.
class Inert : public Protocol {
 public:
  Action on_slot(Slot) override { return Action::idle(); }
  void on_feedback(Slot, const SlotResult&) override {}
  bool done() const override { return false; }
};

// A run over `network` whose success is an external flag; progress flat.
struct InertRig {
  InertRig() : assignment(2, 1, LabelMode::Global, Rng(1)) {
    protocols = {&a, &b};
    network = std::make_unique<Network>(assignment, protocols);
  }
  SupervisedRun run(bool* succeed) {
    SupervisedRun r;
    r.network = network.get();
    r.progress = [] { return std::int64_t{0}; };
    r.success = [succeed] { return *succeed; };
    return r;
  }
  IdentityAssignment assignment;
  Inert a, b;
  std::vector<Protocol*> protocols;
  std::unique_ptr<Network> network;
};

TEST(Supervisor, ValidatesItsOptions) {
  InertRig rig;
  bool succeed = false;
  const AttemptFactory factory = [&](int, std::uint64_t) {
    return rig.run(&succeed);
  };
  SupervisorOptions options;  // no deadline, no stall window
  EXPECT_THROW(run_supervised(factory, options, 1), std::invalid_argument);
  options.deadline = 10;
  options.backoff = 0.5;
  EXPECT_THROW(run_supervised(factory, options, 1), std::invalid_argument);
  options.backoff = 2.0;
  options.max_restarts = -1;
  EXPECT_THROW(run_supervised(factory, options, 1), std::invalid_argument);
  options.max_restarts = 0;
  EXPECT_THROW(run_supervised(nullptr, options, 1), std::invalid_argument);
}

TEST(Supervisor, DeadlineBacksOffExponentially) {
  std::vector<std::uint64_t> attempt_seeds;
  SupervisorOptions options;
  options.deadline = 10;
  options.backoff = 2.0;
  options.max_restarts = 2;
  InertRig rig;
  bool succeed = false;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t aseed) {
        attempt_seeds.push_back(aseed);
        return rig.run(&succeed);
      },
      options, 5);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.restarts, 2);
  ASSERT_EQ(out.epochs.size(), 3u);
  EXPECT_EQ(out.epochs[0].slots, 10);
  EXPECT_EQ(out.epochs[1].slots, 20);
  EXPECT_EQ(out.epochs[2].slots, 40);
  for (const EpochStats& epoch : out.epochs) {
    EXPECT_TRUE(epoch.deadline_hit);
    EXPECT_FALSE(epoch.completed);
  }
  EXPECT_EQ(out.total_slots, 70);
  // Every attempt reseeds differently (split streams of the run seed).
  ASSERT_EQ(attempt_seeds.size(), 3u);
  EXPECT_NE(attempt_seeds[0], attempt_seeds[1]);
  EXPECT_NE(attempt_seeds[1], attempt_seeds[2]);
}

// --- Backoff overflow clamp (next_backoff_deadline) -------------------------

TEST(Supervisor, BackoffClampNeverOverflowsOrWraps) {
  // The old code multiplied in double and cast straight back to Slot; near
  // the top of the Slot range the cast wrapped tiny or negative. The clamp
  // must keep every grown deadline in (previous, kMaxSupervisorDeadline].
  Slot deadline = 3;
  for (int i = 0; i < 200; ++i) {
    const Slot next = next_backoff_deadline(deadline, 2.0, 0);
    ASSERT_GT(next, 0);
    ASSERT_GE(next, deadline);
    ASSERT_LE(next, kMaxSupervisorDeadline);
    deadline = next;
  }
  EXPECT_EQ(deadline, kMaxSupervisorDeadline);  // converged to the ceiling
  // Boundary cases around the ceiling itself.
  EXPECT_EQ(next_backoff_deadline(kMaxSupervisorDeadline, 2.0, 0),
            kMaxSupervisorDeadline);
  EXPECT_EQ(next_backoff_deadline(kMaxSupervisorDeadline - 1, 2.0, 0),
            kMaxSupervisorDeadline);
  // A pathological budget that would overflow even one multiplication.
  EXPECT_EQ(next_backoff_deadline(std::numeric_limits<Slot>::max() / 2, 1e6,
                                  0),
            kMaxSupervisorDeadline);
  // backoff == 1.0 still makes progress (at least one slot) up to the cap.
  EXPECT_EQ(next_backoff_deadline(10, 1.0, 0), 11);
}

TEST(Supervisor, BackoffClampHonorsACustomCeiling) {
  EXPECT_EQ(next_backoff_deadline(3, 100.0, 10), 10);
  EXPECT_EQ(next_backoff_deadline(10, 100.0, 10), 10);  // pinned at the cap
  EXPECT_EQ(next_backoff_deadline(3, 2.0, 10), 6);      // under the cap
  // A custom ceiling above the global one is itself clamped.
  EXPECT_EQ(
      next_backoff_deadline(kMaxSupervisorDeadline, 2.0,
                            std::numeric_limits<Slot>::max()),
      kMaxSupervisorDeadline);
}

TEST(Supervisor, MaxDeadlineBoundsTheEpochsEndToEnd) {
  SupervisorOptions options;
  options.deadline = 3;
  options.backoff = 100.0;
  options.max_restarts = 3;
  options.max_deadline = 10;
  InertRig rig;
  bool succeed = false;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t) { return rig.run(&succeed); }, options, 5);
  EXPECT_FALSE(out.completed);
  ASSERT_EQ(out.epochs.size(), 4u);
  EXPECT_EQ(out.epochs[0].slots, 3);
  EXPECT_EQ(out.epochs[1].slots, 10);  // 300 clamped to max_deadline
  EXPECT_EQ(out.epochs[2].slots, 10);
  EXPECT_EQ(out.epochs[3].slots, 10);
  SupervisorOptions bad = options;
  bad.max_deadline = -1;
  EXPECT_THROW(
      run_supervised([&](int, std::uint64_t) { return rig.run(&succeed); },
                     bad, 5),
      std::invalid_argument);
}

// --- Epoch observer ----------------------------------------------------------

TEST(Supervisor, ObserverSeesEveryEpochAndCanAbort) {
  SupervisorOptions options;
  options.deadline = 5;
  options.max_restarts = 10;
  InertRig rig;
  bool succeed = false;
  std::vector<std::pair<int, Slot>> seen;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t) { return rig.run(&succeed); }, options, 5,
      [&](int attempt, const EpochStats& epoch) {
        seen.emplace_back(attempt, epoch.slots);
        return attempt < 2;  // cancel after the third epoch
      });
  EXPECT_FALSE(out.completed);
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.epochs.size(), 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, 0);
  EXPECT_EQ(seen[2].first, 2);
  for (const auto& [attempt, slots] : seen) EXPECT_GT(slots, 0);
}

TEST(Supervisor, AlwaysTrueObserverLeavesTheOutcomeIdentical) {
  const int n = 16, c = 4, k = 2;
  const CogCastParams params{n, c, k};
  CogCastRunConfig config;
  config.params = params;
  SupervisorOptions options;
  options.deadline = 8 * params.horizon();
  auto run_it = [&](const EpochObserver& observer) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(9));
    return run_supervised(
        [&](int, std::uint64_t aseed) {
          return build_cogcast_run(assignment, config, aseed);
        },
        options, 13, observer);
  };
  const SupervisedOutcome plain = run_it({});
  int observed = 0;
  const SupervisedOutcome watched =
      run_it([&](int, const EpochStats&) { ++observed; return true; });
  EXPECT_FALSE(watched.aborted);
  EXPECT_EQ(observed, static_cast<int>(watched.epochs.size()));
  EXPECT_EQ(plain.completed, watched.completed);
  EXPECT_EQ(plain.restarts, watched.restarts);
  EXPECT_EQ(plain.total_slots, watched.total_slots);
}

TEST(Supervisor, StallWindowFiresBeforeTheDeadline) {
  SupervisorOptions options;
  options.deadline = 1000;
  options.stall_window = 7;
  options.max_restarts = 1;
  InertRig rig;
  bool succeed = false;
  int attempts = 0;
  const SupervisedOutcome out = run_supervised(
      [&](int attempt, std::uint64_t) {
        ++attempts;
        // The restart "fixes" the environment: attempt 1 succeeds at once.
        if (attempt == 1) succeed = true;
        return rig.run(&succeed);
      },
      options, 5);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.restarts, 1);
  EXPECT_EQ(attempts, 2);
  ASSERT_EQ(out.epochs.size(), 2u);
  EXPECT_TRUE(out.epochs[0].stalled);
  EXPECT_EQ(out.epochs[0].slots, 7);  // flat progress for the whole window
  EXPECT_TRUE(out.epochs[1].completed);
  EXPECT_EQ(out.epochs[1].slots, 0);  // success checked before stepping
}

TEST(Supervisor, SuccessPredicateShortCircuitsFurtherEpochs) {
  SupervisorOptions options;
  options.deadline = 50;
  options.max_restarts = 3;
  InertRig rig;
  bool succeed = true;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t) { return rig.run(&succeed); }, options, 5);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.restarts, 0);
  EXPECT_EQ(out.total_slots, 0);
  EXPECT_EQ(out.epochs.size(), 1u);
}

// Terminates after `until` local slots; used for the all-done semantics.
class Terminating : public Protocol {
 public:
  explicit Terminating(Slot until) : until_(until) {}
  Action on_slot(Slot slot) override {
    seen_ = slot;
    return Action::idle();
  }
  void on_feedback(Slot, const SlotResult&) override {}
  bool done() const override { return seen_ >= until_; }

 private:
  Slot until_;
  Slot seen_ = 0;
};

TEST(Supervisor, AllDoneWithoutPredicateCountsAsCompletion) {
  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(1));
  Terminating a(3), b(3);
  std::vector<Protocol*> protocols{&a, &b};
  Network network(assignment, protocols);
  SupervisorOptions options;
  options.deadline = 100;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t) {
        SupervisedRun run;
        run.network = &network;  // no success predicate
        return run;
      },
      options, 1);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.restarts, 0);
}

TEST(Supervisor, AllDoneWithFailedPredicateEndsTheEpochIncomplete) {
  // Protocols that terminate on their own schedule while the success
  // predicate still says no — the CogComp shape. The epoch must end (not
  // burn slots to the deadline) and count as incomplete.
  IdentityAssignment assignment(2, 1, LabelMode::Global, Rng(1));
  SupervisorOptions options;
  options.deadline = 1000;
  options.max_restarts = 1;
  std::vector<std::unique_ptr<Terminating>> nodes;
  std::vector<std::unique_ptr<Network>> networks;
  const SupervisedOutcome out = run_supervised(
      [&](int, std::uint64_t) {
        nodes.push_back(std::make_unique<Terminating>(3));
        nodes.push_back(std::make_unique<Terminating>(3));
        std::vector<Protocol*> protocols{nodes[nodes.size() - 2].get(),
                                         nodes.back().get()};
        networks.push_back(
            std::make_unique<Network>(assignment, protocols));
        SupervisedRun run;
        run.network = networks.back().get();
        run.success = [] { return false; };
        return run;
      },
      options, 1);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.restarts, 1);
  ASSERT_EQ(out.epochs.size(), 2u);
  EXPECT_LT(out.epochs[0].slots, 10);  // ended at all-done, not deadline
  EXPECT_FALSE(out.epochs[0].deadline_hit);
}

// --- The paper's asymmetry under a churn burst -------------------------------

// Bundles a burst engine into the run's state so it lives as long as the
// epoch's network does.
SupervisedRun with_burst(SupervisedRun run, int n, int c, Slot from,
                         Slot len) {
  auto engine = std::make_shared<FaultEngine>(n, c, Rng(42));
  std::vector<NodeId> hit;
  for (NodeId u = 1; u <= n / 3; ++u) hit.push_back(u);  // never the source
  engine->add_burst(hit, from, len);
  run.network->set_fault_engine(engine.get());
  run.state = std::make_shared<
      std::pair<std::shared_ptr<void>, std::shared_ptr<FaultEngine>>>(
      std::move(run.state), std::move(engine));
  return run;
}

TEST(Supervisor, CogCastRidesOutAFirstEpochBurst) {
  const int n = 24, c = 6, k = 2;
  const CogCastParams params{n, c, k};
  const Slot burst_len = 4 * params.horizon();
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  CogCastRunConfig config;
  config.params = params;
  SupervisorOptions options;
  options.deadline = 8 * params.horizon() + burst_len;
  options.max_restarts = 3;
  const SupervisedOutcome out = run_supervised(
      [&](int attempt, std::uint64_t aseed) {
        SupervisedRun run = build_cogcast_run(assignment, config, aseed);
        if (attempt == 0)
          run = with_burst(std::move(run), n, c, /*from=*/3, burst_len);
        return run;
      },
      options, 7);
  // The oblivious epidemic needs no restart: epoch 0 completes even
  // though a third of the nodes were off for most of the run.
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.restarts, 0);
  ASSERT_EQ(out.epochs.size(), 1u);
  EXPECT_TRUE(out.epochs[0].completed);
}

TEST(Supervisor, CogCompNeedsTheRestartToRecover) {
  const int n = 18, c = 6, k = 2;
  const CogCompParams params{n, c, k};
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  const std::vector<Value> values = make_values(n, 11);
  CogCompRunConfig config;
  config.params = params;
  SupervisorOptions options;
  options.deadline = params.max_slots() + 16;
  options.max_restarts = 3;
  const SupervisedOutcome out = run_supervised(
      [&](int attempt, std::uint64_t aseed) {
        SupervisedRun run = build_cogcomp_run(assignment, values, config, aseed);
        // Burst across phases 1-2 wrecks clustering beyond repair.
        if (attempt == 0)
          run = with_burst(std::move(run), n, c, /*from=*/3,
                           params.phase2_end());
        return run;
      },
      options, 7);
  EXPECT_TRUE(out.completed);
  EXPECT_GE(out.restarts, 1);
  EXPECT_FALSE(out.epochs.front().completed);
  EXPECT_TRUE(out.epochs.back().completed);
}

TEST(Supervisor, OutcomeIsDeterministicInTheSeed) {
  const int n = 16, c = 4, k = 2;
  const CogCastParams params{n, c, k};
  CogCastRunConfig config;
  config.params = params;
  SupervisorOptions options;
  options.deadline = 8 * params.horizon();
  auto run_it = [&] {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(9));
    return run_supervised(
        [&](int, std::uint64_t aseed) {
          return build_cogcast_run(assignment, config, aseed);
        },
        options, 13);
  };
  const SupervisedOutcome first = run_it();
  const SupervisedOutcome second = run_it();
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.restarts, second.restarts);
  EXPECT_EQ(first.total_slots, second.total_slots);
  ASSERT_EQ(first.epochs.size(), second.epochs.size());
  for (std::size_t i = 0; i < first.epochs.size(); ++i)
    EXPECT_EQ(first.epochs[i].slots, second.epochs[i].slots);
}

}  // namespace
}  // namespace cogradio
