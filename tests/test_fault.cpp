// Tests for fault injection (sim/fault.h) and the paper's robustness claim:
// the oblivious CogCast epidemic tolerates crashes and temporary outages.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cogcast.h"
#include "core/runtime.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

// A probe protocol that records every call it sees.
class Probe : public Protocol {
 public:
  Action on_slot(Slot slot) override {
    slots_seen.push_back(slot);
    return Action::listen(0);
  }
  void on_feedback(Slot slot, const SlotResult& result) override {
    feedback_seen.push_back({slot, !result.received.empty()});
  }
  bool done() const override { return false; }
  std::vector<Slot> slots_seen;
  std::vector<std::pair<Slot, bool>> feedback_seen;
};

TEST(CrashFault, SilencesFromCrashSlotOn) {
  Probe probe;
  CrashFault crashed(probe, 3);
  EXPECT_EQ(crashed.on_slot(1).mode, Mode::Listen);
  EXPECT_EQ(crashed.on_slot(2).mode, Mode::Listen);
  EXPECT_FALSE(crashed.crashed());
  EXPECT_EQ(crashed.on_slot(3).mode, Mode::Idle);
  EXPECT_TRUE(crashed.crashed());
  EXPECT_TRUE(crashed.done());
  EXPECT_EQ(crashed.on_slot(10).mode, Mode::Idle);
  EXPECT_EQ(probe.slots_seen.size(), 2u);  // inner never saw slot >= 3
}

TEST(CrashFault, DropsFeedbackAfterCrash) {
  Probe probe;
  CrashFault crashed(probe, 2);
  SlotResult result;
  crashed.on_feedback(1, result);
  crashed.on_feedback(2, result);
  crashed.on_feedback(5, result);
  EXPECT_EQ(probe.feedback_seen.size(), 1u);
}

TEST(OutageFault, SuppressesOnlyDuringTheWindow) {
  Probe probe;
  OutageFault outage(probe, 3, 5);  // silenced in slots 3, 4
  EXPECT_EQ(outage.on_slot(1).mode, Mode::Listen);
  EXPECT_EQ(outage.on_slot(3).mode, Mode::Idle);
  EXPECT_EQ(outage.on_slot(4).mode, Mode::Idle);
  EXPECT_EQ(outage.on_slot(5).mode, Mode::Listen);
  // The inner protocol's clock never skipped a slot.
  EXPECT_EQ(probe.slots_seen, (std::vector<Slot>{1, 3, 4, 5}));
}

TEST(OutageFault, FeedbackDuringOutageIsEmptied) {
  Probe probe;
  OutageFault outage(probe, 1, 2);
  (void)outage.on_slot(1);
  Message m = data_msg();
  SlotResult result;
  result.received = {&m, 1};
  outage.on_feedback(1, result);
  ASSERT_EQ(probe.feedback_seen.size(), 1u);
  EXPECT_FALSE(probe.feedback_seen[0].second);  // heard nothing
  (void)outage.on_slot(3);
  outage.on_feedback(3, result);
  EXPECT_TRUE(probe.feedback_seen[1].second);  // transparent again
}

// --- Robustness of the CogCast epidemic --------------------------------------

struct FaultyRun {
  bool completed = false;
  Slot slots = 0;
};

// Runs CogCast where a fraction of the non-source nodes crash at the given
// slot. Crashed nodes count as "done" (they can never be informed), so the
// run measures time for all SURVIVING nodes to be informed.
FaultyRun run_with_crashes(int n, int c, int k, int num_crashes,
                           Slot crash_slot, std::uint64_t seed) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed * 31 + 1);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<std::unique_ptr<CrashFault>> crashed;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    // Crash the last `num_crashes` node ids (never the source).
    if (u >= n - num_crashes) {
      crashed.push_back(std::make_unique<CrashFault>(*nodes.back(), crash_slot));
      protocols.push_back(crashed.back().get());
    } else {
      protocols.push_back(nodes.back().get());
    }
  }
  Network net(assignment, protocols);
  net.run(100'000);
  FaultyRun out;
  out.slots = net.now();
  out.completed = true;
  for (NodeId u = 0; u < n - num_crashes; ++u)
    out.completed =
        out.completed && nodes[static_cast<std::size_t>(u)]->informed();
  return out;
}

TEST(CogCastRobustness, SurvivorsGetInformedDespiteCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // A third of the nodes crash early, while the epidemic is spreading.
    const auto out = run_with_crashes(30, 8, 2, 10, /*crash_slot=*/5, seed);
    EXPECT_TRUE(out.completed) << "seed " << seed;
  }
}

TEST(CogCastRobustness, ToleratesTemporaryOutages) {
  // Every node except the source goes deaf for a window mid-broadcast;
  // because every informed node keeps broadcasting forever, the epidemic
  // resumes when they come back.
  const int n = 16, c = 6, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed + 77);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<std::unique_ptr<OutageFault>> outages;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
      if (u != 0) {
        outages.push_back(
            std::make_unique<OutageFault>(*nodes.back(), 3, 3 + static_cast<Slot>(u)));
        protocols.push_back(outages.back().get());
      } else {
        protocols.push_back(nodes.back().get());
      }
    }
    Network net(assignment, protocols);
    net.run(100'000);
    for (const auto& node : nodes)
      EXPECT_TRUE(node->informed()) << "seed " << seed;
  }
}

TEST(CogCastRobustness, StaggeredActivationStillCompletes) {
  // The paper assumes simultaneous activation; in practice nodes wake up
  // at different times. Model wake-up as an initial outage [1, w_u): the
  // oblivious epidemic needs no synchronized start beyond a common slot
  // clock — it completes once the last sleeper is awake.
  const int n = 18, c = 6, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed + 31);
    Rng wake_rng(seed + 77);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<std::unique_ptr<OutageFault>> sleepers;
    std::vector<Protocol*> protocols;
    Slot last_wake = 1;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
      if (u != 0) {
        const Slot wake = 1 + static_cast<Slot>(wake_rng.below(40));
        last_wake = std::max(last_wake, wake);
        sleepers.push_back(std::make_unique<OutageFault>(*nodes.back(), 1, wake));
        protocols.push_back(sleepers.back().get());
      } else {
        protocols.push_back(nodes.back().get());
      }
    }
    Network net(assignment, protocols);
    net.run(100'000);
    for (const auto& node : nodes)
      EXPECT_TRUE(node->informed()) << "seed " << seed;
    EXPECT_GE(net.now(), last_wake - 1);
  }
}

TEST(CogCastRobustness, CrashedSourceBeforeAnyBroadcastBlocksEveryone) {
  // Sanity inverse: if the source crashes at slot 1 nobody can ever learn
  // the message — the run must hit the cap with zero informed nodes.
  const int n = 8, c = 6, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  Rng seeder(4);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  std::unique_ptr<CrashFault> dead_source;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    if (u == 0) {
      dead_source = std::make_unique<CrashFault>(*nodes.back(), 1);
      protocols.push_back(dead_source.get());
    } else {
      protocols.push_back(nodes.back().get());
    }
  }
  Network net(assignment, protocols);
  net.run(2000);
  for (NodeId u = 1; u < n; ++u)
    EXPECT_FALSE(nodes[static_cast<std::size_t>(u)]->informed());
}

}  // namespace
}  // namespace cogradio
