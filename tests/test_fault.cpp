// Tests for fault injection (sim/fault.h) and the paper's robustness claim:
// the oblivious CogCast epidemic tolerates crashes and temporary outages.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cogcast.h"
#include "core/runtime.h"
#include "sim/assignment.h"
#include "sim/skew.h"

namespace cogradio {
namespace {

Message data_msg() {
  Message m;
  m.type = MessageType::Data;
  return m;
}

// A probe protocol that records every call it sees.
class Probe : public Protocol {
 public:
  Action on_slot(Slot slot) override {
    slots_seen.push_back(slot);
    return Action::listen(0);
  }
  void on_feedback(Slot slot, const SlotResult& result) override {
    feedback_seen.push_back({slot, !result.received.empty()});
  }
  bool done() const override { return false; }
  std::vector<Slot> slots_seen;
  std::vector<std::pair<Slot, bool>> feedback_seen;
};

TEST(CrashFault, SilencesFromCrashSlotOn) {
  Probe probe;
  CrashFault crashed(probe, 3);
  EXPECT_EQ(crashed.on_slot(1).mode, Mode::Listen);
  EXPECT_EQ(crashed.on_slot(2).mode, Mode::Listen);
  EXPECT_FALSE(crashed.crashed());
  EXPECT_EQ(crashed.on_slot(3).mode, Mode::Idle);
  EXPECT_TRUE(crashed.crashed());
  EXPECT_TRUE(crashed.done());
  EXPECT_EQ(crashed.on_slot(10).mode, Mode::Idle);
  EXPECT_EQ(probe.slots_seen.size(), 2u);  // inner never saw slot >= 3
}

TEST(CrashFault, DropsFeedbackAfterCrash) {
  Probe probe;
  CrashFault crashed(probe, 2);
  SlotResult result;
  crashed.on_feedback(1, result);
  crashed.on_feedback(2, result);
  crashed.on_feedback(5, result);
  EXPECT_EQ(probe.feedback_seen.size(), 1u);
}

TEST(OutageFault, SuppressesOnlyDuringTheWindow) {
  Probe probe;
  OutageFault outage(probe, 3, 5);  // silenced in slots 3, 4
  EXPECT_EQ(outage.on_slot(1).mode, Mode::Listen);
  EXPECT_EQ(outage.on_slot(3).mode, Mode::Idle);
  EXPECT_EQ(outage.on_slot(4).mode, Mode::Idle);
  EXPECT_EQ(outage.on_slot(5).mode, Mode::Listen);
  // The inner protocol's clock never skipped a slot.
  EXPECT_EQ(probe.slots_seen, (std::vector<Slot>{1, 3, 4, 5}));
}

TEST(OutageFault, FeedbackDuringOutageIsEmptied) {
  Probe probe;
  OutageFault outage(probe, 1, 2);
  (void)outage.on_slot(1);
  Message m = data_msg();
  SlotResult result;
  result.received = {&m, 1};
  outage.on_feedback(1, result);
  ASSERT_EQ(probe.feedback_seen.size(), 1u);
  EXPECT_FALSE(probe.feedback_seen[0].second);  // heard nothing
  (void)outage.on_slot(3);
  outage.on_feedback(3, result);
  EXPECT_TRUE(probe.feedback_seen[1].second);  // transparent again
}

// Records every SlotResult field (the received span is reduced to its
// size — the span's storage dies with the slot).
class FieldProbe : public Protocol {
 public:
  Action on_slot(Slot slot) override {
    slots_seen.push_back(slot);
    return Action::listen(0);
  }
  void on_feedback(Slot, const SlotResult& r) override {
    jammed.push_back(r.jammed);
    tx_attempted.push_back(r.tx_attempted);
    tx_success.push_back(r.tx_success);
    received_count.push_back(r.received.size());
  }
  bool done() const override { return false; }
  std::vector<Slot> slots_seen;
  std::vector<bool> jammed, tx_attempted, tx_success;
  std::vector<std::size_t> received_count;
};

TEST(OutageFault, SuppressedSlotFeedbackEqualsPoweredOffRadio) {
  // During the outage the inner protocol must see exactly SlotResult{} —
  // field by field the same feedback a genuinely idle node would get —
  // even when the real slot was eventful (jammed, tx'd, heard traffic).
  FieldProbe suppressed;
  OutageFault outage(suppressed, 2, 3);  // suppressed only in slot 2
  FieldProbe idle_twin;                  // what a powered-off radio sees

  Message m = data_msg();
  SlotResult eventful;
  eventful.jammed = true;
  eventful.tx_attempted = true;
  eventful.tx_success = true;
  eventful.received = {&m, 1};

  (void)outage.on_slot(2);
  outage.on_feedback(2, eventful);
  (void)idle_twin.on_slot(2);
  idle_twin.on_feedback(2, SlotResult{});

  ASSERT_EQ(suppressed.jammed.size(), 1u);
  EXPECT_EQ(suppressed.jammed, idle_twin.jammed);
  EXPECT_EQ(suppressed.tx_attempted, idle_twin.tx_attempted);
  EXPECT_EQ(suppressed.tx_success, idle_twin.tx_success);
  EXPECT_EQ(suppressed.received_count, idle_twin.received_count);

  // Outside the window the eventful feedback passes through untouched.
  (void)outage.on_slot(3);
  outage.on_feedback(3, eventful);
  EXPECT_TRUE(suppressed.jammed.back());
  EXPECT_TRUE(suppressed.tx_success.back());
  EXPECT_EQ(suppressed.received_count.back(), 1u);
}

TEST(OutageFault, ZeroLengthWindowIsFullyTransparent) {
  // [t, t) is empty: no slot is suppressed, not even t itself.
  FieldProbe probe;
  OutageFault outage(probe, 4, 4);
  Message m = data_msg();
  SlotResult eventful;
  eventful.received = {&m, 1};
  for (Slot s = 3; s <= 5; ++s) {
    EXPECT_EQ(outage.on_slot(s).mode, Mode::Listen) << "slot " << s;
    outage.on_feedback(s, eventful);
  }
  EXPECT_EQ(probe.received_count, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(CrashFault, CrashAtSlotOneNeverRunsTheInner) {
  Probe probe;
  CrashFault crashed(probe, 1);
  EXPECT_EQ(crashed.on_slot(1).mode, Mode::Idle);
  crashed.on_feedback(1, SlotResult{});
  EXPECT_TRUE(crashed.crashed());
  EXPECT_TRUE(crashed.done());
  EXPECT_TRUE(probe.slots_seen.empty());
  EXPECT_TRUE(probe.feedback_seen.empty());
}

TEST(OutageFault, ComposesWithClockSkew) {
  // Skew-then-outage: the outage window is in *network* slots, the skew
  // shifts the inner clock. In network slots 1..2 the skew keeps the node
  // dormant; the outage covers [4, 6); the inner protocol must see local
  // slots 1, 2, 3, 4 with blank feedback exactly at local slots 2 and 3.
  FieldProbe probe;
  ClockSkew skewed(probe, 2);
  OutageFault outage(skewed, 4, 6);
  Message m = data_msg();
  SlotResult eventful;
  eventful.received = {&m, 1};
  for (Slot s = 1; s <= 6; ++s) {
    (void)outage.on_slot(s);
    outage.on_feedback(s, eventful);
  }
  EXPECT_EQ(probe.slots_seen, (std::vector<Slot>{1, 2, 3, 4}));
  EXPECT_EQ(probe.received_count, (std::vector<std::size_t>{1, 0, 0, 1}));
}

// --- FaultPlan ----------------------------------------------------------------

TEST(FaultPlan, WrapIsIdempotentPerNode) {
  Probe probe;
  FaultPlan plan(4, 50, Rng(9));
  plan.add_random_outages(4);  // every node gets a window
  ASSERT_TRUE(plan.is_faulty(0));
  Protocol& first = plan.wrap(0, probe);
  Protocol& second = plan.wrap(0, probe);
  EXPECT_EQ(&first, &second);  // regression: no stacked second decorator
  // A stacked wrapper would advance the inner clock twice per slot.
  (void)first.on_slot(1);
  EXPECT_EQ(probe.slots_seen.size(), 1u);
}

TEST(FaultPlan, WrapPassesHealthyNodesThrough) {
  Probe probe;
  FaultPlan plan(8, 50, Rng(5));
  plan.add_random_crashes(1);
  ASSERT_EQ(plan.faulty_count(), 1);
  for (NodeId u = 0; u < 8; ++u)
    if (!plan.is_faulty(u)) EXPECT_EQ(&plan.wrap(u, probe), &probe);
}

// --- Robustness of the CogCast epidemic --------------------------------------

struct FaultyRun {
  bool completed = false;
  Slot slots = 0;
};

// Runs CogCast where a fraction of the non-source nodes crash at the given
// slot. Crashed nodes count as "done" (they can never be informed), so the
// run measures time for all SURVIVING nodes to be informed.
FaultyRun run_with_crashes(int n, int c, int k, int num_crashes,
                           Slot crash_slot, std::uint64_t seed) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed * 31 + 1);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<std::unique_ptr<CrashFault>> crashed;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    // Crash the last `num_crashes` node ids (never the source).
    if (u >= n - num_crashes) {
      crashed.push_back(std::make_unique<CrashFault>(*nodes.back(), crash_slot));
      protocols.push_back(crashed.back().get());
    } else {
      protocols.push_back(nodes.back().get());
    }
  }
  Network net(assignment, protocols);
  net.run(100'000);
  FaultyRun out;
  out.slots = net.now();
  out.completed = true;
  for (NodeId u = 0; u < n - num_crashes; ++u)
    out.completed =
        out.completed && nodes[static_cast<std::size_t>(u)]->informed();
  return out;
}

TEST(CogCastRobustness, SurvivorsGetInformedDespiteCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // A third of the nodes crash early, while the epidemic is spreading.
    const auto out = run_with_crashes(30, 8, 2, 10, /*crash_slot=*/5, seed);
    EXPECT_TRUE(out.completed) << "seed " << seed;
  }
}

TEST(CogCastRobustness, ToleratesTemporaryOutages) {
  // Every node except the source goes deaf for a window mid-broadcast;
  // because every informed node keeps broadcasting forever, the epidemic
  // resumes when they come back.
  const int n = 16, c = 6, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed + 77);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<std::unique_ptr<OutageFault>> outages;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
      if (u != 0) {
        outages.push_back(
            std::make_unique<OutageFault>(*nodes.back(), 3, 3 + static_cast<Slot>(u)));
        protocols.push_back(outages.back().get());
      } else {
        protocols.push_back(nodes.back().get());
      }
    }
    Network net(assignment, protocols);
    net.run(100'000);
    for (const auto& node : nodes)
      EXPECT_TRUE(node->informed()) << "seed " << seed;
  }
}

TEST(CogCastRobustness, StaggeredActivationStillCompletes) {
  // The paper assumes simultaneous activation; in practice nodes wake up
  // at different times. Model wake-up as an initial outage [1, w_u): the
  // oblivious epidemic needs no synchronized start beyond a common slot
  // clock — it completes once the last sleeper is awake.
  const int n = 18, c = 6, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    Rng seeder(seed + 31);
    Rng wake_rng(seed + 77);
    std::vector<std::unique_ptr<CogCastNode>> nodes;
    std::vector<std::unique_ptr<OutageFault>> sleepers;
    std::vector<Protocol*> protocols;
    Slot last_wake = 1;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<CogCastNode>(
          u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
      if (u != 0) {
        const Slot wake = 1 + static_cast<Slot>(wake_rng.below(40));
        last_wake = std::max(last_wake, wake);
        sleepers.push_back(std::make_unique<OutageFault>(*nodes.back(), 1, wake));
        protocols.push_back(sleepers.back().get());
      } else {
        protocols.push_back(nodes.back().get());
      }
    }
    Network net(assignment, protocols);
    net.run(100'000);
    for (const auto& node : nodes)
      EXPECT_TRUE(node->informed()) << "seed " << seed;
    EXPECT_GE(net.now(), last_wake - 1);
  }
}

TEST(CogCastRobustness, CrashedSourceBeforeAnyBroadcastBlocksEveryone) {
  // Sanity inverse: if the source crashes at slot 1 nobody can ever learn
  // the message — the run must hit the cap with zero informed nodes.
  const int n = 8, c = 6, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  Rng seeder(4);
  std::vector<std::unique_ptr<CogCastNode>> nodes;
  std::vector<Protocol*> protocols;
  std::unique_ptr<CrashFault> dead_source;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<CogCastNode>(
        u, c, u == 0, data_msg(), seeder.split(static_cast<std::uint64_t>(u))));
    if (u == 0) {
      dead_source = std::make_unique<CrashFault>(*nodes.back(), 1);
      protocols.push_back(dead_source.get());
    } else {
      protocols.push_back(nodes.back().get());
    }
  }
  Network net(assignment, protocols);
  net.run(2000);
  for (NodeId u = 1; u < n; ++u)
    EXPECT_FALSE(nodes[static_cast<std::size_t>(u)]->informed());
}

}  // namespace
}  // namespace cogradio
