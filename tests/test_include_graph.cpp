// Tests for the R7 include-graph builder (analysis/include_graph.h):
// module resolution, layering direction, cycle detection with canonical
// rotation, suppressed-edge exclusion, and header-only modules.
#include "analysis/include_graph.h"

#include <gtest/gtest.h>

namespace cogradio {
namespace {

IncludeRef edge(const std::string& file, const std::string& target,
                int line = 1, bool suppressed = false) {
  IncludeRef ref;
  ref.file = file;
  ref.line = line;
  ref.target = target;
  ref.snippet = "#include \"" + target + "\"";
  ref.suppressed = suppressed;
  return ref;
}

TEST(IncludeGraph, ModuleOfPath) {
  EXPECT_EQ(module_of_path("src/util/rng.h"), "util");
  EXPECT_EQ(module_of_path("src/sim/network.cpp"), "sim");
  EXPECT_EQ(module_of_path("src/analysis/lint.cpp"), "analysis");
  EXPECT_EQ(module_of_path("bench/bench_e7.cpp"), "bench");
  EXPECT_EQ(module_of_path("tools/cograd.cpp"), "tools");
  EXPECT_EQ(module_of_path("tests/test_rng.cpp"), "tests");
  EXPECT_EQ(module_of_path("src/vendor/blob.h"), "");
  EXPECT_EQ(module_of_path("docs/LINT.md"), "");
}

TEST(IncludeGraph, ModuleRankRespectsTheLayering) {
  EXPECT_EQ(module_rank("util"), 0);
  EXPECT_LT(module_rank("util"), module_rank("sim"));
  EXPECT_EQ(module_rank("sim"), module_rank("analysis"));
  EXPECT_LT(module_rank("sim"), module_rank("core"));
  EXPECT_EQ(module_rank("core"), module_rank("agg"));
  EXPECT_EQ(module_rank("agg"), module_rank("lowerbounds"));
  EXPECT_EQ(module_rank("lowerbounds"), module_rank("baselines"));
  EXPECT_LT(module_rank("core"), module_rank("serve"));
  EXPECT_LT(module_rank("serve"), module_rank("tools"));
  EXPECT_EQ(module_rank("bench"), module_rank("tests"));
  EXPECT_EQ(module_rank("vendor"), -1);
}

TEST(IncludeGraph, ModuleOfTarget) {
  EXPECT_EQ(module_of_target("sim/types.h", "core"), "sim");
  // A slash-free target is a same-directory include.
  EXPECT_EQ(module_of_target("rng.h", "util"), "util");
  EXPECT_EQ(module_of_target("vendor/blob.h", "core"), "");
}

TEST(IncludeGraph, DownwardAndSameRankEdgesAreClean) {
  IncludeGraph graph;
  graph.add(edge("src/sim/network.cpp", "util/rng.h"));
  graph.add(edge("src/core/cogcast.cpp", "agg/aggregate.h"));
  graph.add(edge("tools/cograd.cpp", "serve/server.h"));
  EXPECT_TRUE(graph.check().empty());
  EXPECT_TRUE(graph.cycles().empty());
}

TEST(IncludeGraph, UpwardEdgeIsALayeringViolation) {
  IncludeGraph graph;
  graph.add(edge("src/util/uplink.h", "sim/net.h", 8));
  const std::vector<LintFinding> findings = graph.check();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R7");
  EXPECT_EQ(findings[0].file, "src/util/uplink.h");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("layering violation util -> sim"),
            std::string::npos);
  EXPECT_FALSE(findings[0].fixit.empty());
}

TEST(IncludeGraph, ShortestThreeModuleCycleIsCanonicallyRotated) {
  IncludeGraph graph;
  graph.add(edge("src/core/a.h", "agg/b.h"));
  graph.add(edge("src/agg/b.h", "lowerbounds/c.h"));
  graph.add(edge("src/lowerbounds/c.h", "core/a.h"));
  const auto cycles = graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0],
            (std::vector<std::string>{"agg", "lowerbounds", "core"}));
  // Same-rank edges are individually legal, so the only finding is the
  // cycle itself, anchored at the witness of the cycle's first hop.
  const std::vector<LintFinding> findings = graph.check();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(
      findings[0].message.find("module cycle agg -> lowerbounds -> core -> agg"),
      std::string::npos);
  EXPECT_EQ(findings[0].file, "src/agg/b.h");
}

TEST(IncludeGraph, SuppressingAnyEdgeSilencesTheCycle) {
  IncludeGraph graph;
  graph.add(edge("src/core/a.h", "agg/b.h"));
  graph.add(edge("src/agg/b.h", "lowerbounds/c.h", 1, /*suppressed=*/true));
  graph.add(edge("src/lowerbounds/c.h", "core/a.h"));
  EXPECT_TRUE(graph.cycles().empty());
  EXPECT_TRUE(graph.check().empty());
}

TEST(IncludeGraph, HeaderOnlyModulesNeedNoOutgoingEdges) {
  // util appears only as a target (a header-only module with no quoted
  // includes of its own): no unknown-module finding, no cycle.
  IncludeGraph graph;
  graph.add(edge("tests/test_rng.cpp", "util/rng.h"));
  graph.add(edge("src/sim/network.cpp", "util/sweep.h"));
  EXPECT_TRUE(graph.check().empty());
  EXPECT_TRUE(graph.cycles().empty());
}

TEST(IncludeGraph, UnknownModulesAreReportedWithAFixit) {
  IncludeGraph graph;
  graph.add(edge("src/core/a.cpp", "vendor/blob.h", 3));
  graph.add(edge("scripts/tool.cpp", "util/rng.h", 4));
  const std::vector<LintFinding> findings = graph.check();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("vendor/blob.h"), std::string::npos);
  EXPECT_NE(findings[0].fixit.find("kModuleRanks"), std::string::npos);
  EXPECT_NE(findings[1].message.find("scripts/tool.cpp"), std::string::npos);
}

TEST(IncludeGraph, TwoModuleCycleNamesBothDirections) {
  IncludeGraph graph;
  graph.add(edge("src/sim/net.h", "util/uplink.h"));
  graph.add(edge("src/util/uplink.h", "sim/net.h"));
  const auto cycles = graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"sim", "util"}));
}

}  // namespace
}  // namespace cogradio
