// Tests for the primary-user spectrum model (sim/spectrum.h).
#include "sim/spectrum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/runtime.h"

namespace cogradio {
namespace {

SpectrumParams params(int band, double up = 0.1, double down = 0.3) {
  SpectrumParams p;
  p.band = band;
  p.p_free_to_busy = up;
  p.p_busy_to_free = down;
  return p;
}

TEST(Spectrum, ModelInvariantsHoldEverySlot) {
  MarkovSpectrumAssignment a(8, 6, 2, params(10), Rng(1));
  EXPECT_TRUE(a.is_dynamic());
  for (Slot t = 1; t <= 40; ++t) {
    a.begin_slot(t);
    for (NodeId u = 0; u < 8; ++u) {
      const auto set = a.channel_set(u);
      ASSERT_EQ(set.size(), 6u);
      std::set<Channel> unique(set.begin(), set.end());
      EXPECT_EQ(unique.size(), 6u);
      // The k reserved channels are always present.
      EXPECT_TRUE(unique.contains(0));
      EXPECT_TRUE(unique.contains(1));
    }
    EXPECT_GE(a.min_overlap_actual(), 2);
  }
}

TEST(Spectrum, BusyFractionTracksStationaryDistribution) {
  MarkovSpectrumAssignment a(16, 6, 2, params(12, 0.2, 0.2), Rng(2));
  // pi_busy = 0.2 / 0.4 = 0.5; average over many slots should be close.
  double sum = 0.0;
  const int slots = 400;
  for (Slot t = 1; t <= slots; ++t) {
    a.begin_slot(t);
    sum += a.busy_fraction();
  }
  EXPECT_NEAR(sum / slots, a.stationary_busy(), 0.08);
  EXPECT_DOUBLE_EQ(a.stationary_busy(), 0.5);
}

TEST(Spectrum, AvailabilityIsTemporallyCorrelated) {
  // With slow dynamics (small transition probabilities), consecutive
  // slots' channel sets should share most non-reserved channels — unlike
  // an i.i.d. redraw.
  MarkovSpectrumAssignment a(4, 8, 2, params(16, 0.01, 0.02), Rng(3));
  a.begin_slot(1);
  auto prev = a.channel_set(0);
  int shared_total = 0, slots = 0;
  for (Slot t = 2; t <= 30; ++t) {
    a.begin_slot(t);
    const auto cur = a.channel_set(0);
    std::vector<Channel> common;
    std::set_intersection(prev.begin(), prev.end(), cur.begin(), cur.end(),
                          std::back_inserter(common));
    shared_total += static_cast<int>(common.size());
    ++slots;
    prev = cur;
  }
  // 8 channels per slot; with near-static primaries expect >6 shared on
  // average (free set barely changes; only label shuffling varies).
  EXPECT_GT(static_cast<double>(shared_total) / slots, 6.0);
}

TEST(Spectrum, FallbackKicksInUnderHeavyLoad) {
  // Saturated band: nearly everything busy, so most non-reserved picks
  // are mispredicted holes.
  MarkovSpectrumAssignment a(4, 8, 2, params(7, 0.9, 0.05), Rng(4));
  a.begin_slot(50);  // let the chain settle into heavy load
  double fallback = 0;
  for (NodeId u = 0; u < 4; ++u) fallback += a.fallback_fraction(u);
  EXPECT_GT(fallback / 4, 0.3);
}

TEST(Spectrum, ReEnteringSameSlotIsStable) {
  MarkovSpectrumAssignment a(4, 6, 2, params(8), Rng(5));
  a.begin_slot(7);
  const auto before = a.channel_set(2);
  a.begin_slot(7);
  EXPECT_EQ(a.channel_set(2), before);
}

TEST(Spectrum, ParameterValidation) {
  EXPECT_THROW(MarkovSpectrumAssignment(4, 8, 2, params(3), Rng(1)),
               std::invalid_argument);  // band < c - k
  EXPECT_THROW(MarkovSpectrumAssignment(4, 8, 2, params(8, -0.1, 0.5), Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(MarkovSpectrumAssignment(4, 8, 2, params(8, 0.1, 0.0), Rng(1)),
               std::invalid_argument);
}

TEST(Spectrum, CogCastCompletesUnderPrimaryUserDynamics) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const int n = 20, c = 8, k = 2;
    MarkovSpectrumAssignment assignment(n, c, k, params(12, 0.15, 0.25),
                                        Rng(seed));
    CogCastRunConfig config;
    config.params = {n, c, k, 4.0};
    config.seed = seed + 100;
    const auto out = run_cogcast(assignment, config);
    EXPECT_TRUE(out.completed) << "seed " << seed;
    EXPECT_TRUE(valid_distribution_tree(0, out.informed_slot, out.parent));
  }
}

TEST(Spectrum, CogCastCompletesEvenWhenBandSaturated) {
  // Heavy primary-user load leaves mostly the k reserved channels usable;
  // CogCast still completes (the k-overlap invariant never breaks), just
  // at the k-governed rate.
  const int n = 16, c = 8, k = 2;
  MarkovSpectrumAssignment assignment(n, c, k, params(12, 0.9, 0.05), Rng(6));
  CogCastRunConfig config;
  config.params = {n, c, k, 6.0};
  config.seed = 7;
  config.max_slots = 50 * config.params.horizon();
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
}

}  // namespace
}  // namespace cogradio
