# Determinism check for `cograd lint` itself: two runs over the same tree
# must produce byte-identical LINT.json manifests (sorted findings, no
# timestamps, no absolute paths) — the linter must hold itself to the
# contract it enforces.
#
# Invoked by ctest as:
#   cmake -DCOGRAD=<path-to-cograd> -DTREE=<source-dir> -P lint_json_diff.cmake
foreach(run 1 2)
  execute_process(
    COMMAND ${COGRAD} lint --tree ${TREE} --json LINT_run${run}.json
    RESULT_VARIABLE result
    OUTPUT_QUIET)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "cograd lint run ${run} failed (${result})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files LINT_run1.json LINT_run2.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "LINT.json differs between two identical lint runs")
endif()
# The parallel scanner must land on the exact same bytes: per-file results
# go into per-file slots and the cross-file stage is serial, so --jobs can
# only change wall-clock, never the manifest.
execute_process(
  COMMAND ${COGRAD} lint --tree ${TREE} --jobs 4 --json LINT_run_jobs4.json
  RESULT_VARIABLE result
  OUTPUT_QUIET)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "cograd lint --jobs 4 failed (${result})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files LINT_run1.json LINT_run_jobs4.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "LINT.json differs between --jobs 1 and --jobs 4")
endif()
# And the manifest must announce itself as schema 2.
file(READ LINT_run1.json manifest LIMIT 256)
string(FIND "${manifest}" "\"schema_version\": 2" schema_at)
if(schema_at EQUAL -1)
  message(FATAL_ERROR "LINT.json does not declare schema_version 2")
endif()
