# Determinism check for `cograd lint` itself: two runs over the same tree
# must produce byte-identical LINT.json manifests (sorted findings, no
# timestamps, no absolute paths) — the linter must hold itself to the
# contract it enforces.
#
# Invoked by ctest as:
#   cmake -DCOGRAD=<path-to-cograd> -DTREE=<source-dir> -P lint_json_diff.cmake
foreach(run 1 2)
  execute_process(
    COMMAND ${COGRAD} lint --tree ${TREE} --json LINT_run${run}.json
    RESULT_VARIABLE result
    OUTPUT_QUIET)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "cograd lint run ${run} failed (${result})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files LINT_run1.json LINT_run2.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "LINT.json differs between two identical lint runs")
endif()
