// Unit + property tests for the channel-assignment generators: every
// generator must uphold the model invariants of Section 2 — exactly c
// distinct channels per node, pairwise overlap >= k (every slot, for
// dynamic assignments), and labels forming a bijection onto the set.
#include "sim/assignment.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "util/rng.h"

namespace cogradio {
namespace {

void expect_model_invariants(const ChannelAssignment& a) {
  const int n = a.num_nodes();
  const int c = a.channels_per_node();
  for (NodeId u = 0; u < n; ++u) {
    const auto set = a.channel_set(u);
    ASSERT_EQ(static_cast<int>(set.size()), c);
    std::set<Channel> unique(set.begin(), set.end());
    EXPECT_EQ(static_cast<int>(unique.size()), c) << "duplicate channels, node " << u;
    for (Channel ch : set) {
      EXPECT_GE(ch, 0);
      EXPECT_LT(ch, a.total_channels());
    }
  }
  EXPECT_GE(a.min_overlap_actual(), a.min_overlap());
}

using PatternParam = std::tuple<std::string, int, int, int>;  // pattern,n,c,k

class StaticPatternInvariants : public ::testing::TestWithParam<PatternParam> {};

TEST_P(StaticPatternInvariants, HoldsUnderBothLabelModes) {
  const auto& [pattern, n, c, k] = GetParam();
  for (LabelMode mode : {LabelMode::Global, LabelMode::LocalRandom}) {
    auto a = make_assignment(pattern, n, c, k, mode, Rng(7 + n + c + k));
    EXPECT_EQ(a->num_nodes(), n);
    EXPECT_EQ(a->channels_per_node(), c);
    EXPECT_EQ(a->min_overlap(), k);
    expect_model_invariants(*a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticPatternInvariants,
    ::testing::Combine(::testing::Values("shared-core", "partitioned",
                                         "pigeonhole"),
                       ::testing::Values(2, 5, 16), ::testing::Values(4, 8),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string p = std::get<0>(info.param);
      for (auto& ch : p)
        if (ch == '-') ch = '_';
      return p + "_n" + std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param));
    });

TEST(SharedCore, ExactCoreSharedByAll) {
  SharedCoreAssignment a(8, 6, 3, LabelMode::Global, Rng(1));
  // The k core channels must be in every node's set: intersect all sets.
  auto common = a.channel_set(0);
  for (NodeId u = 1; u < 8; ++u) {
    const auto set = a.channel_set(u);
    std::vector<Channel> next;
    std::set_intersection(common.begin(), common.end(), set.begin(), set.end(),
                          std::back_inserter(next));
    common = next;
  }
  EXPECT_GE(static_cast<int>(common.size()), 3);
}

TEST(SharedCore, CustomTotalChannels) {
  SharedCoreAssignment a(4, 6, 2, LabelMode::Global, Rng(2), 50);
  EXPECT_EQ(a.total_channels(), 50);
  expect_model_invariants(a);
}

TEST(SharedCore, LowCorePinsSharedChannels) {
  SharedCoreAssignment a(6, 5, 2, LabelMode::Global, Rng(9), 20,
                         /*low_core=*/true);
  expect_model_invariants(a);
  for (NodeId u = 0; u < 6; ++u) {
    // Global labels sort ascending, so labels 0..k-1 are the pinned core.
    EXPECT_EQ(a.global_channel(u, 0), 0);
    EXPECT_EQ(a.global_channel(u, 1), 1);
    EXPECT_GE(a.global_channel(u, 2), 2);
  }
}

TEST(SharedCore, RejectsTooSmallUniverse) {
  EXPECT_THROW(SharedCoreAssignment(4, 6, 2, LabelMode::Global, Rng(2), 5),
               std::invalid_argument);
}

TEST(Partitioned, Theorem16Shape) {
  const int n = 6, c = 5, k = 2;
  PartitionedAssignment a(n, c, k, LabelMode::Global, Rng(3));
  EXPECT_EQ(a.total_channels(), k + n * (c - k));
  // Pairwise overlap is *exactly* k in this construction.
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) EXPECT_EQ(a.overlap(u, v), k);
}

TEST(Partitioned, PrivateBlocksAreDisjoint) {
  const int n = 5, c = 4, k = 1;
  PartitionedAssignment a(n, c, k, LabelMode::Global, Rng(4));
  // Every channel is used by exactly one node (private) or all (core).
  std::map<Channel, int> usage;
  for (NodeId u = 0; u < n; ++u)
    for (Channel ch : a.channel_set(u)) ++usage[ch];
  for (const auto& [ch, cnt] : usage) EXPECT_TRUE(cnt == 1 || cnt == n)
      << "channel " << ch << " used by " << cnt;
}

TEST(Pigeonhole, UniverseIsTwoCMinusK) {
  PigeonholeAssignment a(10, 8, 3, LabelMode::LocalRandom, Rng(5));
  EXPECT_EQ(a.total_channels(), 2 * 8 - 3);
  expect_model_invariants(a);
}

TEST(Pigeonhole, OverlapsActuallyVary) {
  // With random c-subsets the pairwise overlaps should not be all equal
  // (that is the point of this generator vs the partitioned one).
  PigeonholeAssignment a(12, 8, 2, LabelMode::Global, Rng(6));
  std::set<int> overlaps;
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = u + 1; v < 12; ++v) overlaps.insert(a.overlap(u, v));
  EXPECT_GT(overlaps.size(), 1u);
}

TEST(Identity, AllNodesIdenticalSets) {
  IdentityAssignment a(4, 5, LabelMode::Global, Rng(7));
  EXPECT_EQ(a.min_overlap(), 5);
  EXPECT_EQ(a.total_channels(), 5);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(a.overlap(u, v), 5);
}

TEST(Labels, GlobalModeIsAscending) {
  IdentityAssignment a(3, 6, LabelMode::Global, Rng(8));
  for (NodeId u = 0; u < 3; ++u)
    for (LocalLabel l = 0; l < 6; ++l) EXPECT_EQ(a.global_channel(u, l), l);
}

TEST(Labels, LocalRandomModeIsPermutation) {
  IdentityAssignment a(20, 8, LabelMode::LocalRandom, Rng(9));
  bool any_shuffled = false;
  for (NodeId u = 0; u < 20; ++u) {
    std::set<Channel> seen;
    for (LocalLabel l = 0; l < 8; ++l) {
      const Channel ch = a.global_channel(u, l);
      seen.insert(ch);
      if (ch != l) any_shuffled = true;
    }
    EXPECT_EQ(seen.size(), 8u);
  }
  EXPECT_TRUE(any_shuffled);  // 20 identity permutations is impossible odds
}

TEST(Dynamic, ReDrawsEachSlotButKeepsInvariants) {
  auto a = DynamicAssignment::shared_core(6, 5, 2, Rng(10));
  EXPECT_TRUE(a->is_dynamic());
  auto snapshot = a->channel_set(0);
  bool changed = false;
  for (Slot t = 1; t <= 20; ++t) {
    a->begin_slot(t);
    expect_model_invariants(*a);
    if (a->channel_set(0) != snapshot) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Dynamic, SameSlotSameMapping) {
  auto a = DynamicAssignment::pigeonhole(4, 6, 2, Rng(11));
  a->begin_slot(5);
  const auto before = a->channel_set(2);
  a->begin_slot(5);
  EXPECT_EQ(a->channel_set(2), before);
}

TEST(Adversary, InvariantsAndDodging) {
  // Predictor: every node will pick label (slot % c).
  const int n = 5, c = 4, k = 2;
  AdaptiveAdversaryAssignment a(
      n, c, k, [c](NodeId, Slot slot) { return static_cast<LocalLabel>(slot % c); },
      Rng(12));
  for (Slot t = 1; t <= 30; ++t) {
    a.begin_slot(t);
    expect_model_invariants(a);
    for (NodeId u = 0; u < n; ++u) {
      const Channel dodged = a.global_channel(u, static_cast<LocalLabel>(t % c));
      // Predicted labels must land on private channels (>= k in the fixed
      // layout), where no other node can hear.
      EXPECT_GE(dodged, k);
    }
  }
}

TEST(Adversary, RequiresRoomToDodge) {
  EXPECT_THROW(AdaptiveAdversaryAssignment(3, 4, 4, nullptr, Rng(13)),
               std::invalid_argument);
}

TEST(Factory, UnknownPatternThrows) {
  EXPECT_THROW(make_assignment("nope", 4, 4, 2, LabelMode::Global, Rng(14)),
               std::invalid_argument);
}

TEST(Factory, DynamicNamesWork) {
  auto a = make_assignment("dynamic-shared-core", 4, 4, 2,
                           LabelMode::LocalRandom, Rng(15));
  EXPECT_TRUE(a->is_dynamic());
  auto b = make_assignment("dynamic-pigeonhole", 4, 4, 2,
                           LabelMode::LocalRandom, Rng(16));
  EXPECT_TRUE(b->is_dynamic());
}

TEST(Assignment, ParameterValidation) {
  EXPECT_THROW(IdentityAssignment(0, 4, LabelMode::Global, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SharedCoreAssignment(4, 0, 1, LabelMode::Global, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SharedCoreAssignment(4, 4, 0, LabelMode::Global, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SharedCoreAssignment(4, 4, 5, LabelMode::Global, Rng(1)),
               std::invalid_argument);
}

TEST(StaticPatternNames, StableList) {
  const auto& names = static_pattern_names();
  ASSERT_EQ(names.size(), 3u);
  for (const auto& name : names) {
    auto a = make_assignment(name, 4, 5, 2, LabelMode::Global, Rng(17));
    expect_model_invariants(*a);
  }
}

}  // namespace
}  // namespace cogradio
