// Committed lint-violation fixture (never compiled): a util header reaching
// up into sim, for rule R7. util is rank 0 and sim rank 1, so this edge
// points at a strictly higher-ranked module — and together with sim/net.h's
// legal downward include it closes the shortest possible module cycle,
// exercising both halves of the R7 report.
#pragma once

#include "sim/net.h"

namespace cogradio {

inline int fixture_uplink_channels() { return fixture_net_channels(); }

}  // namespace cogradio
