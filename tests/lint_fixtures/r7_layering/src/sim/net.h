// Committed lint-violation fixture (never compiled): the sim half of the
// R7 cycle. This include is individually legal (sim rank 1 -> util rank 0),
// but combined with util/uplink.h's upward edge it forms the module cycle
// sim -> util -> sim that IncludeGraph::check must report.
#pragma once

#include "util/uplink.h"

namespace cogradio {

inline int fixture_net_channels() { return 16; }

}  // namespace cogradio
