// Committed lint regression fixture (never compiled): a preprocessor-
// disabled include must NOT create an R7 edge. The '#if 0' block below
// quotes an upward util -> sim include that would be a layering violation
// if the masking stage ever stopped blanking disabled regions; this tree
// is expected to lint clean (exit 0), so the ctest leg guarding it is NOT
// marked WILL_FAIL.
#pragma once

#if 0
#include "sim/net.h"  // dead code: would be util -> sim if unmasked
#endif

namespace cogradio {

inline int fixture_masked_value() { return 7; }

}  // namespace cogradio
