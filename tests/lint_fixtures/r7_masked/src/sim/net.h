// Committed lint regression fixture (never compiled): the innocuous sim
// header the masked '#if 0' include in util/masked.h points at. Nothing in
// this tree may produce a finding.
#pragma once

namespace cogradio {

inline int fixture_masked_net_channels() { return 16; }

}  // namespace cogradio
