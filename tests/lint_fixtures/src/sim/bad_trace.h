// Committed lint-violation fixture (never compiled): a serialization-facing
// struct with an uninitialized scalar member, for rule R5. The sim/*.h path
// places it inside R5's scope.
#pragma once

#include <cstdint>

namespace cogradio {

struct BadTraceStats {
  std::int64_t slots = 0;
  std::int64_t broadcasts;  // R5: no default initializer
};

}  // namespace cogradio
