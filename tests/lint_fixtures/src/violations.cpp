// Committed lint-violation fixture. NEVER compiled — this file exists so
// the cograd.lint_fixture ctest leg (WILL_FAIL) can prove the linter exits
// nonzero on a tree with real violations. One hit per rule; R5 and R6 live
// in sibling files matching those rules' path scopes.
//
// The enclosing lint_fixtures/ directory is skipped when linting the real
// tree and scanned only when passed explicitly via --tree.
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_set>

namespace cogradio {

int fixture_r1_wall_clock() {
  return std::rand();  // R1: global C RNG
}

int fixture_r2_iteration() {
  std::unordered_set<int> seen;  // R2: unordered container in src/
  seen.insert(1);
  int sum = 0;
  for (int v : seen) sum += v;  // R2: range-for over unordered container
  return sum;
}

unsigned fixture_r3_literal_seed() {
  std::mt19937 gen(12345);  // R3: non-project, literal-seeded engine
  return gen();
}

int fixture_r4_pointer_keys(int* a, int* b) {
  std::map<int*, int> by_address;  // R4: pointer-keyed container
  by_address[a] = 1;
  by_address[b] = 2;
  return static_cast<int>(by_address.size());
}

}  // namespace cogradio
