// Committed lint-violation fixture (never compiled): float equality in
// metric/gate code, for rule R6. The src/util/ path places it inside R6's
// scope.
namespace cogradio {

bool fixture_r6_float_equality(double measured) {
  return measured == 0.25;  // R6: exact float comparison
}

}  // namespace cogradio
