// Committed lint-violation fixture (never compiled): an Rng constructed
// inside a ParallelSweep task body from a seed that is not the trial's own
// trial_rng(base_seed, t) stream, for rule R10. Coins spent in parallel
// regions must come from the per-trial generator or results depend on
// scheduling.
#include <cstdint>

#include "util/sweep.h"

namespace cogradio {

void fixture_r10_draw(int trials, std::uint64_t shared_seed) {
  ParallelSweep pool(4);
  pool.run(trials, [&](int t) {
    Rng rng(shared_seed);  // R10: not derived from trial_rng(base_seed, t)
    (void)rng.below(static_cast<std::uint64_t>(t) + 2);
  });
}

}  // namespace cogradio
