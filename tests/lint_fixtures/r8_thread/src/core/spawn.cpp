// Committed lint-violation fixture (never compiled): raw thread spawns
// outside the sanctioned pool sites, for rule R8. Only src/util/sweep.cpp
// and src/serve/server.cpp may construct std::thread; everything else must
// go through ParallelSweep so the worker-fanout budget stays accurate.
#include <future>
#include <thread>

namespace cogradio {

void fixture_r8_spawn() {
  std::thread worker([] {});  // R8: raw std::thread outside the allowlist
  worker.detach();            // R8: detach abandons join accounting
  auto f = std::async(std::launch::async, [] {});  // R8: std::async
  f.wait();
}

}  // namespace cogradio
