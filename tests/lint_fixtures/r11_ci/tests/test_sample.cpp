// Committed lint fixture (never compiled): registers the one gtest suite
// the fixture CI workflow's -R filter legitimately covers. The workflow's
// other branch (MissingSuite) matches nothing and must trip rule R11.
#include <gtest/gtest.h>

namespace cogradio {
namespace {

TEST(SampleSuite, Works) { EXPECT_EQ(1 + 1, 2); }

}  // namespace
}  // namespace cogradio
