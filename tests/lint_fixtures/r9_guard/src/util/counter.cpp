// Committed lint-violation fixture (never compiled): a guarded-by
// annotated member touched outside any scope that locks its mutex, for
// rule R9. The locked accessor below is the negative control — it must not
// be flagged.
#include <mutex>

namespace cogradio {

class FixtureCounter {
 public:
  void bump_unlocked_bad() {
    ++hits_;  // R9: touches hits_ without locking mu_
  }

  int read_locked_ok() {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;  // fine: mu_ held in this scope
  }

 private:
  std::mutex mu_;
  int hits_ = 0;  // cograd-guarded-by(mu_)
};

}  // namespace cogradio
