// Committed lint-violation fixture (never compiled): a stale suppression,
// for rule R12. The allow(R1) below sits on code that no longer contains
// any R1 hit, so the directive suppresses nothing and must itself be
// reported — dead suppressions hide future regressions at their site.
namespace cogradio {

int fixture_r12_stale() {
  // cograd-lint: allow(R1) legacy clock call removed, directive left behind
  return 42;
}

}  // namespace cogradio
