// Tests for the Lemma 12 reduction player (lowerbounds/reduction.h).
#include "lowerbounds/reduction.h"

#include <gtest/gtest.h>

#include <set>

namespace cogradio {
namespace {

TEST(ReductionPlayer, ProposalsAreAlwaysFresh) {
  CogCastHittingPlayer player(8, 6, Rng(1));
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < 30; ++i) {
    const Edge e = player.propose();
    EXPECT_GE(e.first, 0);
    EXPECT_LT(e.first, 6);
    EXPECT_GE(e.second, 0);
    EXPECT_LT(e.second, 6);
    EXPECT_TRUE(seen.insert(e).second) << "repeated proposal";
  }
}

TEST(ReductionPlayer, EventuallyWinsTheGame) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int c = 8, k = 3, n = 10;
    HittingGameReferee ref(c, k, Rng(seed));
    CogCastHittingPlayer player(n, c, Rng(seed + 50));
    const GameResult result = play(ref, player, 10'000);
    EXPECT_TRUE(result.won) << "seed " << seed;
  }
}

TEST(ReductionPlayer, RoundAccountingMatchesLemma12) {
  // Lemma 12: game rounds <= min{c, n} * simulated slots, because each
  // simulated slot contributes at most min{c, n} fresh proposals.
  const int c = 10, k = 2;
  for (int n : {4, 10, 40}) {
    HittingGameReferee ref(c, k, Rng(77));
    CogCastHittingPlayer player(n, c, Rng(88));
    const GameResult result = play(ref, player, 100'000);
    ASSERT_TRUE(result.won);
    EXPECT_LE(result.rounds,
              static_cast<std::int64_t>(std::min(c, n)) * player.simulated_slots());
  }
}

TEST(ReductionPlayer, SimulatedSlotsTrackCogCastShape) {
  // When the player wins, the simulated-slot count corresponds to the
  // source's first landing on a matched channel pair — so its median over
  // trials should scale like c^2/(k n') with n' = min(c, n-1) listeners,
  // i.e. decrease as n grows.
  const int c = 12, k = 3;
  auto median_slots = [&](int n) {
    std::vector<std::int64_t> samples;
    for (std::uint64_t t = 0; t < 200; ++t) {
      HittingGameReferee ref(c, k, Rng(300 + t));
      CogCastHittingPlayer player(n, c, Rng(700 + t));
      const GameResult result = play(ref, player, 1'000'000);
      EXPECT_TRUE(result.won);
      samples.push_back(player.simulated_slots());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  EXPECT_GT(median_slots(2), median_slots(24));
}

TEST(ReductionPlayer, RejectsBadParams) {
  EXPECT_THROW(CogCastHittingPlayer(1, 4, Rng(1)), std::invalid_argument);
  EXPECT_THROW(CogCastHittingPlayer(4, 0, Rng(1)), std::invalid_argument);
}

TEST(ReductionPlayer, TranscriptMatchesOrderedReferenceSimulation) {
  // The player dedupes (a, b) pairs with an unordered_set, which it only
  // inserts into and queries — never iterates. If that invariant holds, the
  // proposal transcript is a pure function of the Rng stream, so a reference
  // simulation using a *sorted* std::set for the same dedupe must emit the
  // identical transcript. A divergence here means hash-layout order leaked
  // into results.
  const int n = 9, c = 7;
  const std::uint64_t seed = 4242;
  CogCastHittingPlayer player(n, c, Rng(seed));

  Rng ref_rng(seed);
  std::set<std::uint64_t> ref_proposed;
  std::vector<std::int64_t> b_stamp(static_cast<std::size_t>(c), 0);
  std::int64_t ref_slots = 0;
  std::vector<Edge> ref_queue;
  std::size_t ref_pos = 0;
  auto ref_propose = [&]() -> Edge {
    while (ref_pos >= ref_queue.size()) {
      ref_queue.clear();
      ref_pos = 0;
      ++ref_slots;
      const int a_r =
          static_cast<int>(ref_rng.below(static_cast<std::uint64_t>(c)));
      for (int u = 1; u < n; ++u) {
        const int b =
            static_cast<int>(ref_rng.below(static_cast<std::uint64_t>(c)));
        auto& stamp = b_stamp[static_cast<std::size_t>(b)];
        if (stamp == ref_slots) continue;
        stamp = ref_slots;
        const std::uint64_t key =
            static_cast<std::uint64_t>(a_r) * static_cast<std::uint64_t>(c) +
            static_cast<std::uint64_t>(b);
        if (ref_proposed.insert(key).second) ref_queue.emplace_back(a_r, b);
      }
    }
    return ref_queue[ref_pos++];
  };

  // 49 proposals exhausts every (a, b) pair for c = 7, forcing the dedupe
  // set through its full growth (and rehash) schedule.
  for (int i = 0; i < c * c; ++i) {
    const Edge got = player.propose();
    const Edge want = ref_propose();
    ASSERT_EQ(got, want) << "transcripts diverge at proposal " << i;
  }
  EXPECT_EQ(player.simulated_slots(), ref_slots);
}

TEST(ReductionPlayer, DedupeMembershipInvariantUnderInsertionOrder) {
  // The safety argument for the unordered dedupe set: membership answers do
  // not depend on insertion order or bucket layout. Build the same key set
  // three ways — ascending, descending, and with an oversized pre-reserved
  // bucket array (different rehash history) — and check every probe agrees.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 200; k += 3) keys.push_back(k * 2654435761ULL);

  std::unordered_set<std::uint64_t> ascending, descending, prereserved;
  prereserved.reserve(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ascending.insert(keys[i]);
    descending.insert(keys[keys.size() - 1 - i]);
    prereserved.insert(keys[i]);
  }
  for (std::uint64_t probe = 0; probe < 1000; ++probe) {
    const std::uint64_t key = probe * 2654435761ULL / 2;
    const bool hit = ascending.count(key) > 0;
    EXPECT_EQ(descending.count(key) > 0, hit);
    EXPECT_EQ(prereserved.count(key) > 0, hit);
  }
}

}  // namespace
}  // namespace cogradio
