// Tests for the Lemma 12 reduction player (lowerbounds/reduction.h).
#include "lowerbounds/reduction.h"

#include <gtest/gtest.h>

#include <set>

namespace cogradio {
namespace {

TEST(ReductionPlayer, ProposalsAreAlwaysFresh) {
  CogCastHittingPlayer player(8, 6, Rng(1));
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < 30; ++i) {
    const Edge e = player.propose();
    EXPECT_GE(e.first, 0);
    EXPECT_LT(e.first, 6);
    EXPECT_GE(e.second, 0);
    EXPECT_LT(e.second, 6);
    EXPECT_TRUE(seen.insert(e).second) << "repeated proposal";
  }
}

TEST(ReductionPlayer, EventuallyWinsTheGame) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int c = 8, k = 3, n = 10;
    HittingGameReferee ref(c, k, Rng(seed));
    CogCastHittingPlayer player(n, c, Rng(seed + 50));
    const GameResult result = play(ref, player, 10'000);
    EXPECT_TRUE(result.won) << "seed " << seed;
  }
}

TEST(ReductionPlayer, RoundAccountingMatchesLemma12) {
  // Lemma 12: game rounds <= min{c, n} * simulated slots, because each
  // simulated slot contributes at most min{c, n} fresh proposals.
  const int c = 10, k = 2;
  for (int n : {4, 10, 40}) {
    HittingGameReferee ref(c, k, Rng(77));
    CogCastHittingPlayer player(n, c, Rng(88));
    const GameResult result = play(ref, player, 100'000);
    ASSERT_TRUE(result.won);
    EXPECT_LE(result.rounds,
              static_cast<std::int64_t>(std::min(c, n)) * player.simulated_slots());
  }
}

TEST(ReductionPlayer, SimulatedSlotsTrackCogCastShape) {
  // When the player wins, the simulated-slot count corresponds to the
  // source's first landing on a matched channel pair — so its median over
  // trials should scale like c^2/(k n') with n' = min(c, n-1) listeners,
  // i.e. decrease as n grows.
  const int c = 12, k = 3;
  auto median_slots = [&](int n) {
    std::vector<std::int64_t> samples;
    for (std::uint64_t t = 0; t < 200; ++t) {
      HittingGameReferee ref(c, k, Rng(300 + t));
      CogCastHittingPlayer player(n, c, Rng(700 + t));
      const GameResult result = play(ref, player, 1'000'000);
      EXPECT_TRUE(result.won);
      samples.push_back(player.simulated_slots());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  EXPECT_GT(median_slots(2), median_slots(24));
}

TEST(ReductionPlayer, RejectsBadParams) {
  EXPECT_THROW(CogCastHittingPlayer(1, 4, Rng(1)), std::invalid_argument);
  EXPECT_THROW(CogCastHittingPlayer(4, 0, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
