// Differential tests for intra-trial sharded slot resolution
// (NetworkOptions::shards, sim/network.cpp): for every scenario family the
// sharded resolve phase must be bit-identical to the fused serial step —
// identical ResolvedAction streams, TraceStats, NodeActivity, and serialized
// fault logs — for ANY shard count, because all per-slot randomness is spent
// in the serial coin loop in the canonical draw order and shard merges are
// order-fixed (DETERMINISM.md, "Sharded resolve: the two-phase act/resolve
// pipeline"). This is the shard analogue of test_engine_layouts.cpp.
//
// The families cover all three collision models, backoff emulation, fading,
// jamming, the full FaultEngine kind set, a dynamic assignment, the sparse
// grouping fallback, and the batch-client interface (including the sharded
// collect fast path once n >= 4096).
#include "sim/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/assignment.h"
#include "sim/fault_engine.h"
#include "sim/jamming.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace cogradio {
namespace {

constexpr int kShardCounts[] = {2, 3, 7, 16};

// Everything observable from one run: the full resolved-action stream, final
// stats, per-node activity counters, and the serialized fault log (empty
// string when no fault engine is attached).
struct RunTrace {
  std::vector<ResolvedAction> actions;
  TraceStats stats;
  std::vector<NodeActivity> activity;
  std::string fault_log;
};

struct Family {
  std::string name;
  CollisionModel collision = CollisionModel::OneWinner;
  bool backoff = false;
  double loss_prob = 0.0;
  bool jammed = false;
  bool faulted = false;
  bool dynamic = false;
};

// One fixed randomized run of a family with the given shard count. All
// seeds are pinned, so for a fixed family the shard count is the *only*
// difference between the runs being compared.
RunTrace run_family(const Family& fam, int shards) {
  const int n = 48, c = 8, k = 2;
  const Slot slots = 64;

  std::unique_ptr<ChannelAssignment> assignment;
  if (fam.dynamic) {
    assignment = std::make_unique<DynamicAssignment>(
        n, c, k, 2 * c,
        [&](Rng slot_rng) {
          return std::make_unique<SharedCoreAssignment>(
              n, c, k, LabelMode::LocalRandom, slot_rng);
        },
        Rng(101));
  } else {
    assignment = std::make_unique<SharedCoreAssignment>(
        n, c, k, LabelMode::LocalRandom, Rng(101));
  }

  Rng seeder(202);
  std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<RandomTrafficNode>(
        c, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }

  NetworkOptions opt;
  opt.layout = EngineLayout::SoA;
  opt.seed = 303;
  opt.collision = fam.collision;
  opt.emulate_backoff = fam.backoff;
  opt.loss_prob = fam.loss_prob;
  opt.shards = shards;
  Network net(*assignment, std::move(protocols), opt);

  std::optional<RandomJammer> jammer;
  if (fam.jammed) {
    jammer.emplace(n, assignment->total_channels(), /*budget=*/2, Rng(404));
    net.set_jammer(&*jammer);
  }
  std::optional<FaultEngine> faults;
  if (fam.faulted) {
    faults.emplace(n, c, Rng(505));
    FaultProfile profile;
    profile.deaf = 3;
    profile.mute = 3;
    profile.babble = 3;
    profile.feedback_drop = 3;
    profile.churn = 2;
    profile.burst_nodes = 4;
    profile.burst_len = 6;
    faults->add_random(profile, slots);
    net.set_fault_engine(&*faults);
  }

  RunTrace out;
  net.set_observer([&](Slot, std::span<const ResolvedAction> actions) {
    out.actions.insert(out.actions.end(), actions.begin(), actions.end());
  });
  for (Slot s = 0; s < slots; ++s) net.step();
  out.stats = net.stats();
  for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
  if (faults) out.fault_log = faults->serialize_log();
  return out;
}

void expect_identical(const RunTrace& fused, const RunTrace& sharded,
                      int shards) {
  EXPECT_EQ(fused.stats, sharded.stats) << "shards=" << shards;
  EXPECT_EQ(fused.activity, sharded.activity) << "shards=" << shards;
  EXPECT_EQ(fused.fault_log, sharded.fault_log) << "shards=" << shards;
  ASSERT_EQ(fused.actions.size(), sharded.actions.size())
      << "shards=" << shards;
  for (std::size_t i = 0; i < fused.actions.size(); ++i) {
    ASSERT_EQ(fused.actions[i], sharded.actions[i])
        << "shards=" << shards << " action index " << i;
  }
}

class ShardDifferential : public ::testing::TestWithParam<Family> {};

TEST_P(ShardDifferential, ShardedMatchesFusedBitForBit) {
  const Family& fam = GetParam();
  const RunTrace fused = run_family(fam, /*shards=*/1);
  for (const int shards : kShardCounts)
    expect_identical(fused, run_family(fam, shards), shards);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ShardDifferential,
    ::testing::Values(
        Family{.name = "plain"},
        Family{.name = "backoff", .backoff = true},
        Family{.name = "fading", .loss_prob = 0.25},
        Family{.name = "jammed", .jammed = true},
        Family{.name = "faulted", .faulted = true},
        Family{.name = "all_delivered",
               .collision = CollisionModel::AllDelivered},
        Family{.name = "all_delivered_faulted",
               .collision = CollisionModel::AllDelivered,
               .faulted = true},
        Family{.name = "collision_loss",
               .collision = CollisionModel::CollisionLoss},
        Family{.name = "dynamic", .dynamic = true},
        Family{.name = "kitchen_sink",
               .loss_prob = 0.125,
               .jammed = true,
               .faulted = true},
        Family{.name = "kitchen_sink_backoff",
               .backoff = true,
               .loss_prob = 0.125,
               .jammed = true,
               .faulted = true}),
    [](const ::testing::TestParamInfo<Family>& info) {
      return info.param.name;
    });

// The sparse grouping fallback: a Partitioned universe too large for the
// dense bitmaps forces the counting-sort plan path — sharded resolution
// must still match the fused step exactly.
TEST(ShardDifferentialSparse, PartitionedUniverseMatchesAcrossShardCounts) {
  const int n = 300, c = 16, k = 2;
  const Slot slots = 48;
  ASSERT_FALSE(ChannelBitmaps::affordable(k + n * (c - k), n));

  const auto run_once = [&](int shards) {
    PartitionedAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(7));
    Rng seeder(8);
    std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(
          c, seeder.split(static_cast<std::uint64_t>(u))));
      protocols.push_back(nodes.back().get());
    }
    NetworkOptions opt;
    opt.layout = EngineLayout::SoA;
    opt.seed = 9;
    opt.loss_prob = 0.125;
    opt.shards = shards;
    Network net(assignment, std::move(protocols), opt);
    RunTrace out;
    net.set_observer([&](Slot, std::span<const ResolvedAction> actions) {
      out.actions.insert(out.actions.end(), actions.begin(), actions.end());
    });
    for (Slot s = 0; s < slots; ++s) net.step();
    out.stats = net.stats();
    for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
    return out;
  };

  const RunTrace fused = run_once(1);
  for (const int shards : kShardCounts)
    expect_identical(fused, run_once(shards), shards);
}

// --- Batch-client shard differential ------------------------------------

// Deterministic feedback-oblivious traffic: a pure hash of (slot, node)
// decides mode, label, and payload (same generator as the engine-layout
// batch twin), so every shard count sees byte-identical offered load.
struct ChatterDecision {
  Mode mode = Mode::Idle;
  LocalLabel label = 0;
};

ChatterDecision chatter(Slot slot, NodeId node, int c) {
  std::uint64_t h = static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ull +
                    static_cast<std::uint64_t>(node) * 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 32;
  ChatterDecision d;
  const std::uint64_t roll = h % 10;
  if (roll == 0) return d;  // idle
  d.mode = roll < 5 ? Mode::Broadcast : Mode::Listen;
  d.label = static_cast<LocalLabel>((h >> 8) % static_cast<std::uint64_t>(c));
  return d;
}

Message chatter_msg(Slot slot, NodeId node) {
  Message m;
  m.type = MessageType::Data;
  m.a = slot * 1000 + node;
  return m;
}

struct ChatterTally {
  std::int64_t tx_success = 0;
  std::int64_t jammed = 0;
  std::int64_t received = 0;
  std::int64_t received_payload_sum = 0;

  bool operator==(const ChatterTally&) const = default;
};

class ChatterClient : public BatchClient {
 public:
  ChatterClient(int n, int c, Slot slots, ChatterTally* tally)
      : n_(n), c_(c), slots_(slots), tally_(tally) {}

  void begin_slot(Slot slot, std::span<Mode> mode,
                  std::span<LocalLabel> label) override {
    for (NodeId u = 0; u < n_; ++u) {
      const ChatterDecision d = chatter(slot, u, c_);
      mode[static_cast<std::size_t>(u)] = d.mode;
      label[static_cast<std::size_t>(u)] = d.label;
    }
  }

  Message source_message(Slot slot, NodeId node) override {
    return chatter_msg(slot, node);
  }

  void end_slot(const BatchFeedback& fb) override {
    for (NodeId u = 0; u < n_; ++u) {
      const auto i = static_cast<std::size_t>(u);
      const std::uint8_t f = fb.flags[i];
      if (f & slotflag::kFeedbackBlank) continue;
      if (f & slotflag::kJammed) ++tally_->jammed;
      if (f & slotflag::kTxSuccess) ++tally_->tx_success;
      const std::int32_t count = fb.rx_count[i];
      tally_->received += count;
      for (std::int32_t m = 0; m < count; ++m) {
        tally_->received_payload_sum +=
            fb.messages[static_cast<std::size_t>(fb.rx_offset[i] + m)].a;
      }
    }
    last_slot_ = fb.slot;
  }

  bool done() const override { return last_slot_ >= slots_; }

 private:
  int n_;
  int c_;
  Slot slots_;
  Slot last_slot_ = 0;
  ChatterTally* tally_;
};

struct BatchRun {
  TraceStats stats;
  std::vector<NodeActivity> activity;
  ChatterTally tally;
  std::string fault_log;
};

BatchRun run_batch(int n, int c, int k, Slot slots, int shards,
                   bool adversaries, CollisionModel collision) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(33));
  ChatterTally tally;
  ChatterClient client(n, c, slots, &tally);
  NetworkOptions opt;
  opt.layout = EngineLayout::SoA;
  opt.seed = 77;
  opt.collision = collision;
  opt.loss_prob = collision == CollisionModel::OneWinner ? 0.125 : 0.0;
  opt.shards = shards;
  Network net(assignment, client, opt);
  std::optional<RandomJammer> jammer;
  std::optional<FaultEngine> faults;
  if (adversaries) {
    jammer.emplace(n, assignment.total_channels(), 2, Rng(44));
    net.set_jammer(&*jammer);
    faults.emplace(n, c, Rng(55));
    FaultProfile profile;
    profile.deaf = 4;
    profile.mute = 4;
    profile.babble = 4;
    profile.feedback_drop = 4;
    profile.churn = 3;
    profile.burst_nodes = 5;
    profile.burst_len = 8;
    faults->add_random(profile, slots);
    net.set_fault_engine(&*faults);
  }
  BatchRun out;
  for (Slot s = 0; s < slots; ++s) net.step();
  out.stats = net.stats();
  for (NodeId u = 0; u < n; ++u) out.activity.push_back(net.activity(u));
  out.tally = tally;
  if (faults) out.fault_log = faults->serialize_log();
  return out;
}

void expect_batch_identical(const BatchRun& fused, const BatchRun& sharded,
                            int shards) {
  EXPECT_EQ(fused.stats, sharded.stats) << "shards=" << shards;
  EXPECT_EQ(fused.activity, sharded.activity) << "shards=" << shards;
  EXPECT_EQ(fused.tally, sharded.tally) << "shards=" << shards;
  EXPECT_EQ(fused.fault_log, sharded.fault_log) << "shards=" << shards;
}

// Batch interface under jamming, fading, and the full fault kind set:
// sharded feedback packaging (preassigned message slots, rx views, flag
// bytes) must agree with the fused step for every shard count.
TEST(ShardDifferentialBatch, AdversarialBatchMatchesAcrossShardCounts) {
  const int n = 64, c = 8, k = 2;
  const Slot slots = 96;
  const BatchRun fused = run_batch(n, c, k, slots, /*shards=*/1,
                                   /*adversaries=*/true,
                                   CollisionModel::OneWinner);
  EXPECT_GT(fused.stats.deliveries, 0);
  EXPECT_GT(fused.stats.jammed_node_slots, 0);
  for (const int shards : kShardCounts)
    expect_batch_identical(fused,
                           run_batch(n, c, k, slots, shards,
                                     /*adversaries=*/true,
                                     CollisionModel::OneWinner),
                           shards);
}

// Clean large batch run (n >= 4096, no jammer, no faults): exercises the
// sharded parallel collect fast path, the atomic bitmap fill, and the
// sharded accounting pass — all of which must still be bit-identical.
TEST(ShardDifferentialBatch, LargeCleanBatchUsesShardedCollect) {
  const int n = 4500, c = 16, k = 3;
  const Slot slots = 24;
  const BatchRun fused = run_batch(n, c, k, slots, /*shards=*/1,
                                   /*adversaries=*/false,
                                   CollisionModel::OneWinner);
  EXPECT_GT(fused.stats.deliveries, 0);
  for (const int shards : kShardCounts)
    expect_batch_identical(fused,
                           run_batch(n, c, k, slots, shards,
                                     /*adversaries=*/false,
                                     CollisionModel::OneWinner),
                           shards);
}

// AllDelivered batch: the msg_base prefix-sum packaging (bcount messages per
// channel) is the interesting case — every listener's rx view must span the
// exact same contiguous message range as the fused path writes.
TEST(ShardDifferentialBatch, AllDeliveredBatchMatchesAcrossShardCounts) {
  const int n = 64, c = 8, k = 2;
  const Slot slots = 64;
  const BatchRun fused = run_batch(n, c, k, slots, /*shards=*/1,
                                   /*adversaries=*/false,
                                   CollisionModel::AllDelivered);
  EXPECT_GT(fused.stats.deliveries, 0);
  for (const int shards : kShardCounts)
    expect_batch_identical(fused,
                           run_batch(n, c, k, slots, shards,
                                     /*adversaries=*/false,
                                     CollisionModel::AllDelivered),
                           shards);
}

// Sharding is a SoA feature: the AoS reference path IS the shards == 1
// serial step by definition, so constructing AoS with shards > 1 must be
// rejected loudly (both constructors).
TEST(ShardDifferentialGuards, AoSRejectsShardCountsAboveOne) {
  const int n = 4, c = 2;
  IdentityAssignment assignment(n, c, LabelMode::Global, Rng(1));
  NetworkOptions opt;
  opt.layout = EngineLayout::AoS;
  opt.shards = 2;
  {
    Rng seeder(2);
    std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(c, seeder.split(u)));
      protocols.push_back(nodes.back().get());
    }
    EXPECT_THROW(Network(assignment, std::move(protocols), opt),
                 std::invalid_argument);
  }
}

// Nonsense shard counts are rejected by both constructors.
TEST(ShardDifferentialGuards, RejectsNonPositiveShardCounts) {
  const int n = 4, c = 2;
  IdentityAssignment assignment(n, c, LabelMode::Global, Rng(1));
  NetworkOptions opt;
  opt.layout = EngineLayout::SoA;
  opt.shards = 0;
  {
    Rng seeder(2);
    std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
    std::vector<Protocol*> protocols;
    for (NodeId u = 0; u < n; ++u) {
      nodes.push_back(std::make_unique<RandomTrafficNode>(c, seeder.split(u)));
      protocols.push_back(nodes.back().get());
    }
    EXPECT_THROW(Network(assignment, std::move(protocols), opt),
                 std::invalid_argument);
  }
  ChatterTally tally;
  ChatterClient client(n, c, 1, &tally);
  opt.shards = -3;
  EXPECT_THROW(Network(assignment, client, opt), std::invalid_argument);
}

// More shards than channels, and shards == channels: degenerate partitions
// (empty shards) must behave exactly like the fused step.
TEST(ShardDifferentialGuards, MoreShardsThanChannelsIsExact) {
  Family fam;
  fam.name = "oversharded";
  fam.loss_prob = 0.25;
  const RunTrace fused = run_family(fam, 1);
  expect_identical(fused, run_family(fam, 8), 8);
  expect_identical(fused, run_family(fam, 64), 64);
}

}  // namespace
}  // namespace cogradio
