// Cross-module integration tests: the paper's protocols composed with the
// substitution substrates (backoff radio, jammers, adversarial dynamics).
#include <gtest/gtest.h>

#include "baselines/hopping_together.h"
#include "core/runtime.h"
#include "sim/assignment.h"
#include "sim/jamming.h"

namespace cogradio {
namespace {

TEST(Integration, CogCastOverBackoffEmulatedRadio) {
  // End-to-end substitution check: CogCast running on the collision-loss
  // radio with decay backoff must still inform everyone, at a micro-slot
  // cost of O(log^2 n) per contended channel-slot (footnote 4).
  const int n = 24, c = 8, k = 3;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(1));
  CogCastRunConfig config;
  config.params = {n, c, k, 6.0};
  config.seed = 2;
  config.net.emulate_backoff = true;
  config.net.backoff = backoff_params_for(n);
  const auto out = run_cogcast(assignment, config);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(valid_distribution_tree(0, out.informed_slot, out.parent));
  EXPECT_GT(out.stats.micro_slots, 0);
  // Overhead per success should be within the O(log^2 n) budget.
  const double per_success = static_cast<double>(out.stats.micro_slots) /
                             static_cast<double>(out.stats.successes);
  EXPECT_LE(per_success, static_cast<double>(config.net.backoff.budget));
}

TEST(Integration, CogCompOverBackoffEmulatedRadio) {
  const int n = 16, c = 6, k = 2;
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(3));
  CogCompRunConfig config;
  config.params = {n, c, k, 4.0};
  config.seed = 4;
  config.net.emulate_backoff = true;
  config.net.backoff = backoff_params_for(n);
  const auto values = make_values(n, 5);
  const auto out = run_cogcomp(assignment, values, config);
  // Backoff failures are possible but vanishingly rare at these sizes; the
  // aggregate must be exact whenever the run completes.
  if (out.completed) {
    EXPECT_EQ(out.result, out.expected);
  }
  EXPECT_EQ(out.stats.backoff_failures, 0);
  EXPECT_TRUE(out.completed);
}

TEST(Integration, CogCastBeatsReactiveJammer) {
  // Theorem 18 in action with the strongest history-adaptive strategy.
  const int n = 20, c = 12, jam_budget = 3;
  IdentityAssignment assignment(n, c, LabelMode::LocalRandom, Rng(6));
  ReactiveJammer jammer(n, c, jam_budget);
  CogCastRunConfig config;
  config.params = {n, c, c - 2 * jam_budget, 6.0};
  config.seed = 7;
  config.jammer = &jammer;
  config.max_slots = 30 * config.params.horizon();
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
}

TEST(Integration, CogCastBeatsSweepJammer) {
  const int n = 20, c = 12, jam_budget = 4;
  IdentityAssignment assignment(n, c, LabelMode::LocalRandom, Rng(8));
  SweepJammer jammer(n, c, jam_budget);
  CogCastRunConfig config;
  config.params = {n, c, c - 2 * jam_budget, 6.0};
  config.seed = 9;
  config.jammer = &jammer;
  config.max_slots = 30 * config.params.horizon();
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
}

TEST(Integration, AdversaryBlocksDeterministicScanForever) {
  // Theorem 17 demonstration, deterministic half: a scan-style broadcaster
  // whose label choice is predictable never escapes the adaptive adversary.
  const int n = 6, c = 5, k = 2;
  AdaptiveAdversaryAssignment assignment(
      n, c, k,
      [c](NodeId, Slot slot) { return static_cast<LocalLabel>(slot % c); },
      Rng(10));

  // A deterministic "hop in label order" broadcast protocol.
  class DetScan : public Protocol {
   public:
    DetScan(int c, bool source) : c_(c), informed_(source) {}
    Action on_slot(Slot slot) override {
      const auto label = static_cast<LocalLabel>(slot % c_);
      if (informed_) {
        Message m;
        m.type = MessageType::Data;
        return Action::broadcast(label, m);
      }
      return Action::listen(label);
    }
    void on_feedback(Slot, const SlotResult& r) override {
      if (!r.received.empty()) informed_ = true;
    }
    bool done() const override { return informed_; }
    int c_;
    bool informed_;
  };

  std::vector<std::unique_ptr<DetScan>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<DetScan>(c, u == 0));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  net.run(5000);
  // Nobody besides the source ever gets informed.
  for (NodeId u = 1; u < n; ++u) EXPECT_FALSE(nodes[static_cast<std::size_t>(u)]->done());
}

TEST(Integration, CogCastEscapesTheSameAdversary) {
  // Theorem 17 demonstration, randomized half: the same adversary (given a
  // blind guess as its predictor) cannot stop CogCast.
  const int n = 6, c = 5, k = 2;
  AdaptiveAdversaryAssignment assignment(
      n, c, k,
      [c](NodeId, Slot slot) { return static_cast<LocalLabel>(slot % c); },
      Rng(11));
  CogCastRunConfig config;
  config.params = {n, c, k, 6.0};
  config.seed = 12;
  config.max_slots = 50 * config.params.horizon();
  const auto out = run_cogcast(assignment, config);
  EXPECT_TRUE(out.completed);
}

TEST(Integration, DynamicAssignmentDoesNotSlowCogCastMuch) {
  // Section 7: CogCast's guarantee carries over verbatim to the dynamic
  // model. Compare medians over trials: within 2x of the static ones.
  const int n = 24, c = 8, k = 3;
  auto median_of = [&](bool dynamic) {
    std::vector<double> samples;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      std::unique_ptr<ChannelAssignment> a =
          dynamic ? static_cast<std::unique_ptr<ChannelAssignment>>(
                        DynamicAssignment::shared_core(n, c, k, Rng(seed)))
                  : std::make_unique<SharedCoreAssignment>(
                        n, c, k, LabelMode::LocalRandom, Rng(seed));
      CogCastRunConfig config;
      config.params = {n, c, k};
      config.seed = seed * 31;
      samples.push_back(static_cast<double>(run_cogcast(*a, config).slots));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  const double stat = median_of(false);
  const double dyn = median_of(true);
  EXPECT_LT(dyn, 2.5 * stat + 10.0);
  EXPECT_LT(stat, 2.5 * dyn + 10.0);
}

TEST(Integration, CogCastToleratesHeavyFading) {
  // Half of all deliveries lost: the long-lived epidemic still completes,
  // just slower (every informed node keeps retrying forever).
  const int n = 20, c = 8, k = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
    CogCastRunConfig config;
    config.params = {n, c, k, 4.0};
    config.seed = seed + 9;
    config.net.loss_prob = 0.5;
    config.max_slots = 256 * config.params.horizon();
    const auto out = run_cogcast(assignment, config);
    EXPECT_TRUE(out.completed) << "seed " << seed;
  }
}

TEST(Integration, CogCompNeverSilentlyWrongUnderFading) {
  // Fading breaks CogComp's loss-free assumptions; the acceptable outcomes
  // are success-with-exact-result or detected incompleteness — never a
  // run that claims completeness with a wrong aggregate.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SharedCoreAssignment assignment(16, 6, 2, LabelMode::LocalRandom,
                                    Rng(seed));
    CogCompRunConfig config;
    config.params = {16, 6, 2, 4.0};
    config.seed = seed;
    config.net.loss_prob = 0.3;
    const auto values = make_values(16, seed);
    const auto out = run_cogcomp(assignment, values, config);
    if (out.completed) {
      EXPECT_EQ(out.result, out.expected) << "seed " << seed;
    }
  }
}

TEST(Integration, HoppingTogetherRequiresGlobalLabels) {
  // With local random labels the "global" channel list handed to the node
  // is still physically correct (we construct it from the assignment), so
  // the algorithm still works — the inaccessibility is informational, not
  // mechanical. This test documents that the simulator enforces knowledge
  // boundaries by API shape: HoppingTogetherNode needs the globals vector,
  // which only a global-label deployment can supply.
  const int n = 6, c = 5, k = 2;
  PartitionedAssignment assignment(n, c, k, LabelMode::Global, Rng(13));
  Message payload;
  payload.type = MessageType::Data;
  std::vector<std::unique_ptr<HoppingTogetherNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    std::vector<Channel> globals;
    for (LocalLabel l = 0; l < c; ++l)
      globals.push_back(assignment.global_channel(u, l));
    nodes.push_back(std::make_unique<HoppingTogetherNode>(
        u, assignment.total_channels(), u == 0, payload, std::move(globals)));
    protocols.push_back(nodes.back().get());
  }
  Network net(assignment, protocols);
  net.run(assignment.total_channels() + 1);
  EXPECT_TRUE(net.all_done());
}

}  // namespace
}  // namespace cogradio
