// Tests for the hitting games (Section 6, Lemmas 11 & 14).
#include "lowerbounds/hitting_game.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/stats.h"

namespace cogradio {
namespace {

TEST(Referee, MatchingIsAValidKMatching) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    HittingGameReferee ref(10, 4, Rng(seed));
    ASSERT_EQ(ref.matching().size(), 4u);
    std::set<int> a_side, b_side;
    for (const auto& [a, b] : ref.matching()) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, 10);
      EXPECT_GE(b, 0);
      EXPECT_LT(b, 10);
      EXPECT_TRUE(a_side.insert(a).second) << "duplicate A endpoint";
      EXPECT_TRUE(b_side.insert(b).second) << "duplicate B endpoint";
    }
  }
}

TEST(Referee, PerfectMatchingWhenKEqualsC) {
  HittingGameReferee ref(6, 6, Rng(3));
  std::set<int> a_side, b_side;
  for (const auto& [a, b] : ref.matching()) {
    a_side.insert(a);
    b_side.insert(b);
  }
  EXPECT_EQ(a_side.size(), 6u);
  EXPECT_EQ(b_side.size(), 6u);
}

TEST(Referee, ContainsIsExact) {
  HittingGameReferee ref(5, 2, Rng(4));
  for (int a = 0; a < 5; ++a)
    for (int b = 0; b < 5; ++b) {
      const bool in = ref.contains({a, b});
      const bool expected =
          std::find(ref.matching().begin(), ref.matching().end(),
                    Edge{a, b}) != ref.matching().end();
      EXPECT_EQ(in, expected);
    }
}

TEST(Referee, RejectsBadParams) {
  EXPECT_THROW(HittingGameReferee(0, 1, Rng(1)), std::invalid_argument);
  EXPECT_THROW(HittingGameReferee(4, 0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(HittingGameReferee(4, 5, Rng(1)), std::invalid_argument);
}

TEST(Play, WinningRoundIsCounted) {
  // A deterministic "player" that proposes a known matching edge on round 3.
  class Scripted : public HittingGamePlayer {
   public:
    explicit Scripted(Edge target) : target_(target) {}
    Edge propose() override {
      ++round_;
      if (round_ == 3) return target_;
      return {target_.first, (target_.second + 1) % 4};
    }
    Edge target_;
    int round_ = 0;
  };
  HittingGameReferee ref(4, 4, Rng(5));
  Scripted player(ref.matching().front());
  const GameResult result = play(ref, player, 100);
  EXPECT_TRUE(result.won);
  EXPECT_EQ(result.rounds, 3);
}

TEST(Play, LossConsumesAllRounds) {
  class Stubborn : public HittingGamePlayer {
   public:
    Edge propose() override { return {0, 0}; }
  };
  HittingGameReferee ref(6, 1, Rng(6));
  // Re-roll until (0,0) is not the matching edge.
  while (ref.contains({0, 0})) ref = HittingGameReferee(6, 1, Rng(ref.matching().front().second + 10));
  Stubborn player;
  const GameResult result = play(ref, player, 50);
  EXPECT_FALSE(result.won);
  EXPECT_EQ(result.rounds, 50);
}

TEST(FreshPlayer, EventuallyWinsAlways) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    HittingGameReferee ref(8, 2, Rng(seed));
    FreshPlayer player(8, Rng(seed + 100));
    const GameResult result = play(ref, player, 8 * 8);
    EXPECT_TRUE(result.won);  // all 64 edges proposed, matching is a subset
  }
}

TEST(Lemma11, RoundBoundFormula) {
  // beta = c/k = 2 -> alpha = 8 -> bound = c^2 / (8k).
  EXPECT_DOUBLE_EQ(lemma11_round_bound(16, 8), 16.0 * 16.0 / (8.0 * 8.0));
  // beta -> infinity: alpha -> 2.
  EXPECT_NEAR(lemma11_round_bound(1000, 1), 1000.0 * 1000.0 / 2.004, 1000.0);
  EXPECT_THROW(lemma11_round_bound(4, 3), std::invalid_argument);
}

TEST(Lemma11, UniformPlayerLosesWithinTheBound) {
  // Empirical check of the lower bound: within l = c^2/(alpha k) rounds the
  // uniform player should win with probability < 1/2 (Lemma 11 proves this
  // for every player).
  const int c = 24, k = 6;
  const auto l = static_cast<std::int64_t>(lemma11_round_bound(c, k));
  int wins = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    HittingGameReferee ref(c, k, Rng(1000 + static_cast<std::uint64_t>(t)));
    UniformPlayer player(c, Rng(2000 + static_cast<std::uint64_t>(t)));
    if (play(ref, player, l).won) ++wins;
  }
  EXPECT_LT(wins, kTrials / 2);
}

TEST(Lemma11, FreshPlayerAlsoLosesWithinTheBound) {
  const int c = 24, k = 6;
  const auto l = static_cast<std::int64_t>(lemma11_round_bound(c, k));
  int wins = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    HittingGameReferee ref(c, k, Rng(5000 + static_cast<std::uint64_t>(t)));
    FreshPlayer player(c, Rng(6000 + static_cast<std::uint64_t>(t)));
    if (play(ref, player, l).won) ++wins;
  }
  EXPECT_LT(wins, kTrials / 2);
}

TEST(Lemma14, CompleteGameNeedsCOver3Rounds) {
  // k = c (perfect matching): any player wins within c/3 rounds with
  // probability < 1/2. The fresh player is the strongest natural one.
  const int c = 30;
  int wins = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    HittingGameReferee ref(c, c, Rng(7000 + static_cast<std::uint64_t>(t)));
    FreshPlayer player(c, Rng(8000 + static_cast<std::uint64_t>(t)));
    if (play(ref, player, c / 3).won) ++wins;
  }
  EXPECT_LT(wins, kTrials / 2);
}

TEST(FreshPlayer, ExpectedWinRoundMatchesTheory) {
  // Against a k-matching, a no-repeat uniform player's median win round is
  // ~ c^2 * ln(2) / k (geometric-ish over c^2 cells with k winners).
  const int c = 20, k = 5;
  std::vector<double> rounds;
  for (int t = 0; t < 300; ++t) {
    HittingGameReferee ref(c, k, Rng(9000 + static_cast<std::uint64_t>(t)));
    FreshPlayer player(c, Rng(9500 + static_cast<std::uint64_t>(t)));
    const auto result = play(ref, player, c * c);
    ASSERT_TRUE(result.won);
    rounds.push_back(static_cast<double>(result.rounds));
  }
  const double median = summarize(rounds).median;
  const double theory = c * c * 0.66 / k;  // median of min of k uniform picks
  EXPECT_GT(median, theory * 0.5);
  EXPECT_LT(median, theory * 2.0);
}

}  // namespace
}  // namespace cogradio
