// Tests for multi-hop convergecast (core/multihop_converge.h).
#include "core/multihop_converge.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runtime.h"
#include "sim/assignment.h"

namespace cogradio {
namespace {

using Param = std::tuple<std::string, int, int, int>;  // topo, n, c, k

Topology make_topo(const std::string& shape, int n, std::uint64_t seed) {
  if (shape == "line") return Topology::line(n);
  if (shape == "ring") return Topology::ring(n);
  if (shape == "grid") return Topology::grid(n / 4, 4);
  if (shape == "clique") return Topology::clique(n);
  return Topology::random_geometric(n, 0.45, Rng(seed));
}

class MultihopConvergeSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MultihopConvergeSweep, AggregatesExactlyOverTheFloodTree) {
  const auto& [shape, n, c, k] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const Topology topo = make_topo(shape, n, seed);
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom,
                                    Rng(seed * 3 + 1));
    const auto values = make_values(n, seed ^ 0xCCAA, -100, 100);
    MultihopConvergeConfig config;
    config.seed = seed * 7 + 2;
    const auto out =
        run_multihop_converge(assignment, topo, values, config);
    ASSERT_TRUE(out.completed)
        << shape << " n=" << n << " seed=" << seed << " covered "
        << out.covered << "/" << n;
    EXPECT_EQ(out.result, out.expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultihopConvergeSweep,
    ::testing::Values(Param{"line", 10, 6, 2}, Param{"ring", 12, 6, 2},
                      Param{"grid", 12, 6, 3}, Param{"clique", 10, 6, 2},
                      Param{"geometric", 14, 6, 2}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MultihopConverge, MinMaxOpsWork) {
  const int n = 10, c = 6, k = 2;
  const Topology topo = Topology::grid(2, 5);
  const auto values = make_values(n, 5, -50, 50);
  for (AggOp op : {AggOp::Min, AggOp::Max}) {
    SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(6));
    MultihopConvergeConfig config;
    config.seed = 7;
    config.op = op;
    const auto out = run_multihop_converge(assignment, topo, values, config);
    ASSERT_TRUE(out.completed) << to_string(op);
    EXPECT_EQ(out.result, out.expected);
  }
}

TEST(MultihopConverge, DepthsFollowTheFloodTree) {
  // White-box: after the run every informed node's depth is parent's + 1.
  const int n = 12, c = 6, k = 2;
  const Topology topo = Topology::ring(n);
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(8));
  MultihopConvergeParams params;
  params.n = n;
  params.c = c;
  params.max_depth = n - 1;
  params.flood_slots = 600;
  params.epoch_steps = 600;
  params.decay_levels = 3;
  Rng seeder(9);
  const auto values = make_values(n, 10);
  std::vector<std::unique_ptr<MultihopConvergeNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<MultihopConvergeNode>(
        u, params, u == 0, values[static_cast<std::size_t>(u)],
        Aggregator(AggOp::Sum), seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  MultihopNetwork net(assignment, topo, protocols);
  net.run(params.max_slots());
  EXPECT_EQ(nodes[0]->depth(), 0);
  for (NodeId u = 1; u < n; ++u) {
    const auto& node = *nodes[static_cast<std::size_t>(u)];
    ASSERT_TRUE(node.informed());
    const NodeId pa = node.parent();
    ASSERT_NE(pa, kNoNode);
    EXPECT_TRUE(topo.are_neighbors(u, pa));
    EXPECT_EQ(node.depth(),
              nodes[static_cast<std::size_t>(pa)]->depth() + 1);
    EXPECT_TRUE(node.delivered()) << "node " << u;
  }
  EXPECT_TRUE(nodes[0]->complete());
}

TEST(MultihopConverge, SingleNodeTrivial) {
  const Topology topo = Topology::clique(1);
  IdentityAssignment assignment(1, 3, LabelMode::Global, Rng(1));
  const std::vector<Value> values{23};
  const auto out = run_multihop_converge(assignment, topo, values, {});
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.result, 23);
}

TEST(MultihopConverge, ShortfallIsDetectedNotSilent) {
  // Starve the flood budget so some nodes stay uninformed: the source must
  // report covered < n, never a wrong "complete" aggregate.
  const int n = 12, c = 6, k = 2;
  const Topology topo = Topology::line(n);
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(12));
  const auto values = make_values(n, 13);
  MultihopConvergeConfig config;
  config.seed = 14;
  config.flood_slots = 2;  // cannot cross 11 hops in 2 slots
  const auto out = run_multihop_converge(assignment, topo, values, config);
  EXPECT_FALSE(out.completed);
  EXPECT_LT(out.covered, n);
}

TEST(MultihopConverge, RejectsBadInput) {
  const Topology topo = Topology::line(3);
  IdentityAssignment assignment(4, 3, LabelMode::Global, Rng(1));
  const std::vector<Value> values{1, 2, 3, 4};
  EXPECT_THROW(run_multihop_converge(assignment, topo, values, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cogradio
