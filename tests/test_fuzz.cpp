// Engine fuzzing: oblivious random traffic hammers the network for many
// slots while sim/invariants.h's InvariantChecker — attached as the slot
// observer, with every protocol tapped — cross-checks the collision model
// externally: winner uniqueness, delivery semantics, jamming opacity, and
// the TraceStats/NodeActivity accounting identities (docs/MODEL.md,
// "Checked invariants"). The checker replaces this file's original
// hand-rolled oracle; the coverage here is a superset (all three collision
// models, backoff emulation, and fading are exercised).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/assignment.h"
#include "sim/invariants.h"
#include "sim/jamming.h"
#include "sim/network.h"
#include "util/proptest.h"

namespace cogradio {
namespace {

void fuzz_run(int n, int c, int k, std::uint64_t seed, Jammer* jammer,
              int slots, NetworkOptions opt = {}) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed + 1);
  std::vector<std::unique_ptr<RandomTrafficNode>> nodes;
  std::vector<Protocol*> protocols;
  InvariantChecker checker;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<RandomTrafficNode>(
        c, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(checker.tap(*nodes.back()));
  }
  opt.seed = seed + 2;
  Network net(assignment, protocols, opt);
  if (jammer != nullptr) net.set_jammer(jammer);
  checker.attach(net);

  for (int s = 0; s < slots; ++s) net.step();

  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(checker.slots_checked(), slots);
}

TEST(NetworkFuzz, InvariantsHoldOverRandomTraffic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    fuzz_run(12, 5, 2, seed, nullptr, 400);
}

TEST(NetworkFuzz, InvariantsHoldWithBigGroups) {
  // Few channels, many nodes: heavy contention every slot.
  fuzz_run(40, 2, 1, 77, nullptr, 300);
}

TEST(NetworkFuzz, InvariantsHoldUnderJamming) {
  RandomJammer jammer(12, 10, 3, Rng(9));
  fuzz_run(12, 5, 2, 123, &jammer, 400);
}

TEST(NetworkFuzz, SingleNodeNeverReceives) {
  fuzz_run(1, 4, 2, 5, nullptr, 200);
}

TEST(NetworkFuzz, InvariantsHoldUnderBackoffEmulation) {
  NetworkOptions opt;
  opt.emulate_backoff = true;
  opt.backoff = backoff_params_for(12);
  fuzz_run(12, 5, 2, 31, nullptr, 400, opt);
}

TEST(NetworkFuzz, InvariantsHoldUnderBackoffWithJamming) {
  NetworkOptions opt;
  opt.emulate_backoff = true;
  opt.backoff = backoff_params_for(16);
  RandomJammer jammer(16, 10, 2, Rng(4));
  fuzz_run(16, 5, 2, 57, &jammer, 300, opt);
}

TEST(NetworkFuzz, InvariantsHoldOnAllDeliveredModel) {
  NetworkOptions opt;
  opt.collision = CollisionModel::AllDelivered;
  fuzz_run(14, 4, 2, 19, nullptr, 400, opt);
}

TEST(NetworkFuzz, InvariantsHoldOnCollisionLossModel) {
  NetworkOptions opt;
  opt.collision = CollisionModel::CollisionLoss;
  fuzz_run(14, 4, 2, 23, nullptr, 400, opt);
}

TEST(NetworkFuzz, InvariantsHoldUnderFading) {
  NetworkOptions opt;
  opt.loss_prob = 0.25;
  fuzz_run(12, 5, 2, 41, nullptr, 400, opt);
}

}  // namespace
}  // namespace cogradio
