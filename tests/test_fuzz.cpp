// Engine fuzzing: random protocols hammer the network for many slots while
// an observer cross-checks the collision-model invariants externally.
//
// Invariants checked every slot (OneWinner model, Section 2):
//   * at most one tx_success per physical channel;
//   * a channel with >= 1 broadcaster has exactly one success;
//   * jam-free listeners on a channel with a winner all receive exactly
//     that winner's message; listeners on silent channels receive nothing;
//   * failed broadcasters receive the winner's message;
//   * per-node activity counters tally exactly with the observed actions.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sim/assignment.h"
#include "sim/jamming.h"
#include "sim/network.h"

namespace cogradio {
namespace {

// Acts uniformly at random each slot; records what it saw for the oracle.
class FuzzNode : public Protocol {
 public:
  FuzzNode(int c, Rng rng) : c_(c), rng_(rng) {}

  Action on_slot(Slot) override {
    const auto roll = rng_.below(10);
    last_ = {};
    if (roll == 0) {
      last_.mode = Mode::Idle;
      return Action::idle();
    }
    const auto label = static_cast<LocalLabel>(rng_.below(static_cast<std::uint64_t>(c_)));
    if (roll <= 4) {
      last_.mode = Mode::Broadcast;
      last_.label = label;
      Message m;
      m.type = MessageType::Data;
      m.a = static_cast<std::int64_t>(rng_.below(1000));
      return Action::broadcast(label, m);
    }
    last_.mode = Mode::Listen;
    last_.label = label;
    return Action::listen(label);
  }

  void on_feedback(Slot, const SlotResult& result) override {
    last_.jammed = result.jammed;
    last_.tx_attempted = result.tx_attempted;
    last_.tx_success = result.tx_success;
    last_.received.assign(result.received.begin(), result.received.end());
  }

  bool done() const override { return false; }

  struct LastSlot {
    Mode mode = Mode::Idle;
    LocalLabel label = 0;
    bool jammed = false;
    bool tx_attempted = false;
    bool tx_success = false;
    std::vector<Message> received;
  };
  LastSlot last_;

 private:
  int c_;
  Rng rng_;
};

struct Tally {
  std::int64_t tx = 0, tx_success = 0, listen = 0, received = 0, idle = 0,
               jammed = 0;
};

void fuzz_run(int n, int c, int k, std::uint64_t seed, Jammer* jammer,
              int slots) {
  SharedCoreAssignment assignment(n, c, k, LabelMode::LocalRandom, Rng(seed));
  Rng seeder(seed + 1);
  std::vector<std::unique_ptr<FuzzNode>> nodes;
  std::vector<Protocol*> protocols;
  for (NodeId u = 0; u < n; ++u) {
    nodes.push_back(std::make_unique<FuzzNode>(
        c, seeder.split(static_cast<std::uint64_t>(u))));
    protocols.push_back(nodes.back().get());
  }
  NetworkOptions opt;
  opt.seed = seed + 2;
  Network net(assignment, protocols, opt);
  if (jammer != nullptr) net.set_jammer(jammer);

  std::vector<Tally> tally(static_cast<std::size_t>(n));

  net.set_observer([&](Slot slot, std::span<const ResolvedAction> acts) {
    // Group by channel and check the model's invariants.
    std::map<Channel, std::vector<const ResolvedAction*>> groups;
    for (const auto& a : acts)
      if (a.mode != Mode::Idle && !a.jammed) groups[a.channel].push_back(&a);

    for (const auto& [channel, members] : groups) {
      (void)channel;
      int broadcasters = 0, winners = 0;
      NodeId winner = kNoNode;
      for (const auto* a : members) {
        if (a->mode == Mode::Broadcast) {
          ++broadcasters;
          if (a->tx_success) {
            ++winners;
            winner = a->node;
          }
        }
      }
      if (broadcasters > 0) {
        ASSERT_EQ(winners, 1) << "slot " << slot;
      } else {
        ASSERT_EQ(winners, 0);
      }
      for (const auto* a : members) {
        const auto& last = nodes[static_cast<std::size_t>(a->node)]->last_;
        if (a->node == winner) {
          EXPECT_TRUE(last.tx_success);
          EXPECT_TRUE(last.received.empty());
        } else if (broadcasters > 0) {
          // Listener or failed broadcaster: exactly the winner's message.
          ASSERT_EQ(last.received.size(), 1u) << "slot " << slot;
          EXPECT_EQ(last.received[0].sender, winner);
        } else {
          EXPECT_TRUE(last.received.empty());
        }
      }
    }

    // Update expected per-node tallies.
    for (const auto& a : acts) {
      Tally& t = tally[static_cast<std::size_t>(a.node)];
      if (a.mode == Mode::Idle) {
        ++t.idle;
      } else if (a.jammed) {
        ++t.jammed;
      } else if (a.mode == Mode::Broadcast) {
        ++t.tx;
        if (a.tx_success) ++t.tx_success;
        t.received += static_cast<std::int64_t>(
            nodes[static_cast<std::size_t>(a.node)]->last_.received.size());
      } else {
        ++t.listen;
        t.received += static_cast<std::int64_t>(
            nodes[static_cast<std::size_t>(a.node)]->last_.received.size());
      }
    }
  });

  for (int s = 0; s < slots; ++s) net.step();

  // Activity counters must match the oracle exactly.
  for (NodeId u = 0; u < n; ++u) {
    const NodeActivity& a = net.activity(u);
    const Tally& t = tally[static_cast<std::size_t>(u)];
    EXPECT_EQ(a.tx, t.tx) << "node " << u;
    EXPECT_EQ(a.tx_success, t.tx_success) << "node " << u;
    EXPECT_EQ(a.listen, t.listen) << "node " << u;
    EXPECT_EQ(a.received, t.received) << "node " << u;
    EXPECT_EQ(a.idle, t.idle) << "node " << u;
    EXPECT_EQ(a.jammed, t.jammed) << "node " << u;
  }
}

TEST(NetworkFuzz, InvariantsHoldOverRandomTraffic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    fuzz_run(12, 5, 2, seed, nullptr, 400);
}

TEST(NetworkFuzz, InvariantsHoldWithBigGroups) {
  // Few channels, many nodes: heavy contention every slot.
  fuzz_run(40, 2, 1, 77, nullptr, 300);
}

TEST(NetworkFuzz, InvariantsHoldUnderJamming) {
  RandomJammer jammer(12, 10, 3, Rng(9));
  fuzz_run(12, 5, 2, 123, &jammer, 400);
}

TEST(NetworkFuzz, SingleNodeNeverReceives) {
  fuzz_run(1, 4, 2, 5, nullptr, 200);
}

}  // namespace
}  // namespace cogradio
